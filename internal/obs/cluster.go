package obs

import "sync"

// ClusterMetrics is the observability surface of cbsimd's cluster mode
// (internal/cluster): cluster-wide counters for work movement (forwards,
// steals, cache-fill gossip, journal replication, dead-peer adoption)
// plus a per-peer block of RPC latency histograms, error/retry counters,
// and circuit-breaker state gauges. One instance is registered per node;
// everything lands in the same Registry the daemon serves at GET
// /metrics, so breaker transitions and hedged-read wins are observable
// exactly like cache hits are.
type ClusterMetrics struct {
	reg *Registry

	// Forwards counts cells this node sent to their owning peer for
	// computation instead of simulating locally.
	Forwards *Counter
	// Steals counts queued cells this node computed on behalf of a busy
	// peer (work stealing; the inverse direction of Forwards).
	Steals *Counter
	// RemoteHits counts cells resolved from a peer's cache — the bytes
	// came over the wire instead of from a local simulation.
	RemoteHits *Counter
	// FillsSent / FillsReceived count cache-fill gossip messages: after a
	// local simulation the payload is offered to the key's replica set.
	FillsSent     *Counter
	FillsReceived *Counter
	// HedgedReads counts reads where a backup request was launched
	// against a replica because the owner was slow; HedgeWins counts the
	// subset where the backup answered first.
	HedgedReads *Counter
	HedgeWins   *Counter
	// JournalRecordsSent / JournalRecordsReceived count job-journal
	// records replicated to (resp. accepted from) peers.
	JournalRecordsSent     *Counter
	JournalRecordsReceived *Counter
	// Adoptions counts jobs this node re-owned from a peer it declared
	// dead, via the replicated journal.
	Adoptions *Counter

	mu    sync.Mutex
	peers map[string]*PeerMetrics
}

// PeerMetrics is the per-peer block of a ClusterMetrics: every series
// carries a peer="<name>" label.
type PeerMetrics struct {
	// RPCSeconds observes the latency of every completed RPC attempt to
	// the peer, successful or not.
	RPCSeconds *Histogram
	// RPCErrors counts failed RPC attempts (transport errors, non-2xx
	// statuses, timeouts); Retries counts the backoff re-attempts those
	// failures triggered.
	RPCErrors *Counter
	Retries   *Counter
	// BreakerState is the peer circuit breaker's current state encoded as
	// 0 = closed (healthy), 1 = half-open (probing), 2 = open (refusing).
	BreakerState *Gauge
	// BreakerOpens counts closed->open transitions: each is one detected
	// peer failure episode.
	BreakerOpens *Counter
}

// Circuit-breaker states as exposed by the cluster_breaker_state gauge.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// NewClusterMetrics registers the cluster metric families in reg and
// returns the handle bundle. Registration is idempotent (the Registry
// dedups by name+labels), so wiring several components to the same
// registry is safe.
func NewClusterMetrics(reg *Registry) *ClusterMetrics {
	return &ClusterMetrics{
		reg: reg,
		Forwards: reg.Counter("cluster_forward_total",
			"Cells forwarded to their owning peer for computation."),
		Steals: reg.Counter("cluster_steal_total",
			"Queued cells computed on behalf of a busy peer."),
		RemoteHits: reg.Counter("cluster_remote_hits_total",
			"Cells resolved from a peer's cache instead of local simulation."),
		FillsSent: reg.Counter("cluster_fill_sent_total",
			"Cache-fill gossip messages sent to replica peers."),
		FillsReceived: reg.Counter("cluster_fill_received_total",
			"Cache-fill gossip messages accepted from peers."),
		HedgedReads: reg.Counter("cluster_hedged_reads_total",
			"Reads that launched a backup request against a replica."),
		HedgeWins: reg.Counter("cluster_hedge_wins_total",
			"Hedged reads where the backup replica answered first."),
		JournalRecordsSent: reg.Counter("cluster_journal_records_sent_total",
			"Job-journal records replicated to peers."),
		JournalRecordsReceived: reg.Counter("cluster_journal_records_received_total",
			"Job-journal records accepted from peers."),
		Adoptions: reg.Counter("cluster_adoptions_total",
			"Jobs re-owned from dead peers via the replicated journal."),
		peers: make(map[string]*PeerMetrics),
	}
}

// Peer returns the per-peer metric block for name, creating and caching
// it on first use. The returned handles are lock-free; this call takes a
// lock and belongs outside hot loops.
func (m *ClusterMetrics) Peer(name string) *PeerMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[name]; ok {
		return p
	}
	l := L("peer", name)
	p := &PeerMetrics{
		RPCSeconds: m.reg.Histogram("cluster_peer_rpc_seconds",
			"Latency of RPC attempts to the peer, including failures.",
			ExpBuckets(0.001, 2, 12), l),
		RPCErrors: m.reg.Counter("cluster_peer_rpc_errors_total",
			"Failed RPC attempts to the peer.", l),
		Retries: m.reg.Counter("cluster_peer_rpc_retries_total",
			"Backoff re-attempts against the peer.", l),
		BreakerState: m.reg.Gauge("cluster_breaker_state",
			"Peer circuit breaker state: 0 closed, 1 half-open, 2 open.", l),
		BreakerOpens: m.reg.Counter("cluster_breaker_opens_total",
			"Closed-to-open breaker transitions for the peer.", l),
	}
	m.peers[name] = p
	return p
}
