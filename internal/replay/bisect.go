package replay

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/trace"
)

// This file is the divergence bisector: run two sources in lockstep,
// binary-search their digest-mark streams to the first disagreeing
// mark, then fine-scan per event boundary from the last agreeing mark
// to the exact first divergent cycle — reporting the cycle, the
// component digests that differ there, and the first differing trace
// event.

// Report is the outcome of a bisection.
type Report struct {
	ALabel, BLabel string
	// Scope is the digest scope used: ScopeFull when the two
	// configurations are DigestCompatible, ScopeArch otherwise.
	Scope machine.DigestScope
	// Interval is the mark cadence the coarse search ran at.
	Interval uint64
	// MarksCompared is the number of aligned digest marks examined.
	MarksCompared int

	// Diverged reports whether any difference was found. When false,
	// the two runs agreed at every compared boundary and at their ends.
	Diverged bool
	// Cycle is the first divergent cycle: the earliest cycle at which
	// the two machines did observably different things. Valid when
	// Diverged.
	Cycle uint64
	// Components names the component digests that differ at the
	// boundary just after Cycle (canonical machine order).
	Components []string
	// AEvent and BEvent render the first differing trace event of each
	// side ("" when the divergence is state-only, or when that side
	// emitted fewer events than the other).
	AEvent, BEvent string
	// AEnd and BEnd are the runs' end cycles (Stats.Cycles).
	AEnd, BEnd uint64
}

// String renders the report for the CLI.
func (rp *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bisect %s vs %s (scope %s, mark interval %d, %d marks)\n",
		rp.ALabel, rp.BLabel, rp.Scope, rp.Interval, rp.MarksCompared)
	if !rp.Diverged {
		fmt.Fprintf(&b, "no divergence: runs agree at every boundary (ends: %d vs %d cycles)\n", rp.AEnd, rp.BEnd)
		return b.String()
	}
	fmt.Fprintf(&b, "first divergent cycle: %d\n", rp.Cycle)
	fmt.Fprintf(&b, "differing components:  %s\n", strings.Join(rp.Components, ", "))
	if rp.AEvent != "" || rp.BEvent != "" {
		fmt.Fprintf(&b, "first differing event:\n")
		fmt.Fprintf(&b, "  %s: %s\n", rp.ALabel, orNone(rp.AEvent))
		fmt.Fprintf(&b, "  %s: %s\n", rp.BLabel, orNone(rp.BEvent))
	} else {
		fmt.Fprintf(&b, "state-only divergence (no trace event differs in the scanned window)\n")
	}
	fmt.Fprintf(&b, "run ends: %s %d cycles, %s %d cycles\n", rp.ALabel, rp.AEnd, rp.BLabel, rp.BEnd)
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "(no event)"
	}
	return s
}

// Bisect records both sources, locates the first divergent mark by
// binary search, and pins the exact first divergent cycle with a
// per-event-boundary lockstep scan. The digest scope is ScopeFull when
// the two configurations are DigestCompatible (e.g. chaos vs fault-free
// of the same setup, or wheel vs heap-only kernel) and ScopeArch
// otherwise (cross-protocol comparisons, where only architectural state
// is commensurable).
//
// The verdict is sound only when both sources are seed-deterministic:
// the recorded mark stream must be the run the fine scan re-executes.
// Replay verifies that property as it goes and fails loudly on
// mismatch.
func Bisect(a, b Source, opts Options) (*Report, error) {
	opts = opts.fill()
	opts.SpillDir = "" // bisection recordings are transient

	// Probe both configurations to pick the digest scope before
	// recording (marks are digested at record time).
	ma, err := a.Build()
	if err != nil {
		return nil, fmt.Errorf("replay: build %s: %w", a.Label, err)
	}
	mb, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("replay: build %s: %w", b.Label, err)
	}
	if machine.DigestCompatible(ma.Config(), mb.Config()) {
		opts.Scope = machine.ScopeFull
	} else {
		opts.Scope = machine.ScopeArch
	}

	ra, err := record(ma, a, opts)
	if err != nil {
		return nil, err
	}
	rb, err := record(mb, b, opts)
	if err != nil {
		return nil, err
	}

	rp := &Report{
		ALabel: a.Label, BLabel: b.Label,
		Scope: opts.Scope, Interval: opts.Interval,
		AEnd: ra.stats.Cycles, BEnd: rb.stats.Cycles,
	}

	// Coarse: binary-search the aligned mark streams for the first
	// disagreeing index. Divergence is monotone — every digest folds
	// cumulative counters (events executed, per-component stats), so
	// two runs that have done different things never re-collide.
	n := len(ra.marks)
	if len(rb.marks) < n {
		n = len(rb.marks)
	}
	rp.MarksCompared = n
	first := sort.Search(n, func(i int) bool {
		return ra.marks[i].Digest != rb.marks[i].Digest
	})

	if first == n && ra.endCycle == rb.endCycle &&
		len(ra.marks) == len(rb.marks) && ra.finalDigest == rb.finalDigest {
		return rp, nil // byte-identical runs
	}
	// Fine: lockstep per-event-boundary scan from the last agreeing
	// mark. Jumps both machines to their common next event boundary,
	// so empty cycles cost nothing.
	anchorIdx := first - 1
	if first == 0 {
		anchorIdx = 0
	}
	anchor := ra.marks[anchorIdx].Cycle
	if err := fineScan(rp, ra, rb, anchor); err != nil {
		return nil, err
	}
	return rp, nil
}

// eventLog collects trace events during the fine scan.
type eventLog struct {
	events []trace.Event
}

func (l *eventLog) Emit(e trace.Event) { l.events = append(l.events, e) }

// fineScan advances two fresh machines in lockstep from the anchor
// boundary and fills the report with the first divergent cycle, the
// differing components, and the first differing trace events.
func fineScan(rp *Report, ra, rb *Recording, anchor uint64) error {
	ma, err := ra.src.Build()
	if err != nil {
		return fmt.Errorf("replay: rebuild %s: %w", ra.src.Label, err)
	}
	mb, err := rb.src.Build()
	if err != nil {
		return fmt.Errorf("replay: rebuild %s: %w", rb.src.Label, err)
	}
	for _, pair := range []struct {
		m *machine.Machine
		r *Recording
	}{{ma, ra}, {mb, rb}} {
		if anchor == 0 {
			continue
		}
		done, err := pair.m.RunToCycle(anchor)
		if err != nil {
			return fmt.Errorf("replay: %s: %w", pair.r.src.Label, err)
		}
		if done {
			return fmt.Errorf("replay: %s finished before the agreed anchor %d: non-deterministic source", pair.r.src.Label, anchor)
		}
		if got, want := pair.m.Digest(pair.r.opts.Scope), markAt(pair.r.marks, anchor); got != want {
			return fmt.Errorf("replay: %s diverged from its own recording at cycle %d: non-deterministic source", pair.r.src.Label, anchor)
		}
	}

	// Trace both sides from the anchor on, to name the first differing
	// message/wake once the state digests disagree.
	la, lb := &eventLog{}, &eventLog{}
	ma.AttachTrace(la)
	mb.AttachTrace(lb)
	defer ma.DetachTrace()
	defer mb.DetachTrace()

	// The sources may already differ at the anchor itself — only
	// possible when the very first mark (cycle 0) disagreed, i.e. the
	// initial machines differ before any event fires.
	if diff := machine.DiffComponents(ma.ComponentDigests(rp.Scope), mb.ComponentDigests(rp.Scope)); len(diff) > 0 {
		rp.Diverged = true
		rp.Cycle = anchor
		rp.Components = diff
		return nil
	}

	doneA, doneB := false, false
	for {
		na, okA := ma.NextEventCycle()
		nb, okB := mb.NextEventCycle()
		// A finished side stops advancing: its leftover same-cycle
		// events must not drive the boundary choice.
		okA = okA && !doneA
		okB = okB && !doneB
		if !okA && !okB {
			return nil // both stopped with no digest difference
		}
		t := na
		if !okA || (okB && nb < t) {
			t = nb
		}
		boundary := t + 1
		if !doneA {
			if doneA, err = ma.RunToCycle(boundary); err != nil {
				return fmt.Errorf("replay: %s: %w", ra.src.Label, err)
			}
		}
		if !doneB {
			if doneB, err = mb.RunToCycle(boundary); err != nil {
				return fmt.Errorf("replay: %s: %w", rb.src.Label, err)
			}
		}
		da := ma.ComponentDigests(rp.Scope)
		db := mb.ComponentDigests(rp.Scope)
		if diff := machine.DiffComponents(da, db); len(diff) > 0 {
			rp.Diverged = true
			rp.Cycle = t
			rp.Components = diff
			rp.AEvent, rp.BEvent = firstEventDiff(la.events, lb.events)
			return nil
		}
		if doneA && doneB {
			return nil
		}
	}
}

// markAt returns the recorded digest at the given mark cycle (0 when
// absent, which cannot match a real digest in practice).
func markAt(marks []Mark, cycle uint64) uint64 {
	for _, mk := range marks {
		if mk.Cycle == cycle {
			return mk.Digest
		}
	}
	return 0
}

// firstEventDiff locates the first index where the two event streams
// differ and renders both sides ("" for a side whose stream already
// ended).
func firstEventDiff(a, b []trace.Event) (string, string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return formatEvent(a[i]), formatEvent(b[i])
		}
	}
	if len(a) > n {
		return formatEvent(a[n]), ""
	}
	if len(b) > n {
		return "", formatEvent(b[n])
	}
	return "", ""
}

func formatEvent(e trace.Event) string {
	s := fmt.Sprintf("cycle %d node %d %s addr %#x arg %d", e.Cycle, e.Node, e.What, uint64(e.Addr), e.Arg)
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}
