package chaos

// This file implements deterministic snapshot/restore for machine
// warm-starts (machine.Snapshot). The fault spec and its precomputed
// thresholds are configuration; the mutable state is the PRNG position
// and the injected-fault counters.

// EngineState is a copy of an Engine's mutable state.
type EngineState struct {
	RNG   Rand
	Stats Stats
}

// State captures the engine's mutable state.
func (e *Engine) State() EngineState {
	return EngineState{RNG: e.rng, Stats: e.stats}
}

// SetState overwrites the engine's mutable state, rewinding (or
// advancing) its fault stream to the captured position.
func (e *Engine) SetState(st EngineState) {
	e.rng = st.RNG
	e.stats = st.Stats
}
