package cpu

import "repro/internal/isa"

// This file implements deterministic snapshot/restore for machine
// warm-starts (machine.Snapshot). A core holds no transient closures of
// its own at machine quiescence: a blocked memory operation lives as the
// L1's pending entry (whose State() refuses to snapshot), and everything
// else is pending kernel events. So a core's state is purely
// architectural and can always be captured.

// CoreState is a deep copy of a Core's architectural state. The program
// is shared by pointer: isa.Programs are immutable after construction.
type CoreState struct {
	Prog         *isa.Program
	Regs         [isa.NumRegs]uint64
	PC           int
	BackoffCount int
	SyncStack    []syncFrame
	Started      bool
	Done         bool
	Stats        Stats
}

// State captures the core's architectural state.
func (c *Core) State() CoreState {
	st := CoreState{
		Prog:         c.prog,
		Regs:         c.regs,
		PC:           c.pc,
		BackoffCount: c.backoffCount,
		Started:      c.started,
		Done:         c.done,
		Stats:        c.stats,
	}
	if len(c.syncStack) > 0 {
		st.SyncStack = append([]syncFrame(nil), c.syncStack...)
	}
	return st
}

// SetState overwrites the core's architectural state with a previously
// captured one. Structural wiring (kernel, port, classifier, onDone,
// observer) is untouched.
func (c *Core) SetState(st CoreState) {
	c.prog = st.Prog
	c.regs = st.Regs
	c.pc = st.PC
	c.backoffCount = st.BackoffCount
	c.syncStack = append(c.syncStack[:0], st.SyncStack...)
	c.started = st.Started
	c.done = st.Done
	c.stats = st.Stats
}
