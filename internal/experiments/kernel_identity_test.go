package experiments

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/synclib"
)

// runMicroOnKernel runs one sync microbenchmark on a machine built from
// the setup's config with the chosen kernel tier and returns its Stats.
func runMicroOnKernel(t *testing.T, mc Micro, s Setup, heapOnly bool) machine.Stats {
	t.Helper()
	const cores = 16
	g := mc.build(cores, s.Flavor())
	cfg := machineConfig(s, Options{Cores: cores, CBEntries: 4})
	cfg.HeapOnlyKernel = heapOnly
	m := machine.New(cfg, synclib.IsPrivate)
	for a, v := range g.Layout.Init {
		m.Store.StoreWord(a, v)
	}
	for tid, prog := range g.Programs {
		m.Load(tid, prog, nil)
	}
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("micro %s under %s: %v", mc.Name, s.Name, err)
	}
	return m.Stats()
}

// The calendar-wheel kernel must produce byte-identical Stats to the
// heap-only reference on every Figure-20 synchronization microbenchmark —
// the workloads whose spin/wake patterns the wheel fast path targets.
func TestKernelVariantsByteIdenticalOnSyncMicros(t *testing.T) {
	setups := []Setup{
		{Name: "Invalidation", Protocol: machine.ProtocolMESI},
		{Name: "BackOff-10", Protocol: machine.ProtocolBackoff, BackoffLimit: 10},
		{Name: "CB-One", Protocol: machine.ProtocolCallback, CBOne: true},
	}
	for _, mc := range Micros() {
		for _, s := range setups {
			wheel := runMicroOnKernel(t, mc, s, false)
			heap := runMicroOnKernel(t, mc, s, true)
			if !reflect.DeepEqual(wheel, heap) {
				t.Fatalf("micro %s under %s: Stats diverge:\nwheel %+v\nheap  %+v", mc.Name, s.Name, wheel, heap)
			}
		}
	}
}
