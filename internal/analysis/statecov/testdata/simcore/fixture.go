// Package fixture exercises the statecov analyzer: structs with
// snapshot and digest manifests, planted uncovered fields, a waived
// ephemeral field, and the exemption classes.
package fixture

// hash stands in for digest.Hash.
type hash struct{ sum uint64 }

func (h *hash) U64(v uint64) { h.sum ^= v }

// Widget participates in both state surfaces.
type Widget struct {
	count uint64
	// fuel is captured by State/SetState but missing from Digest.
	fuel uint64 // want "field Widget\\.fuel is mutated \\(in Step\\) but never folded by the digest side \\(Digest\\)"
	// lost is missing from both manifests.
	lost uint64 // want "never captured by the snapshot side \\(SetState/State\\)" "never folded by the digest side \\(Digest\\)"
	// scratch is rebuilt from the pending event at the start of every
	// step; it is never live at a snapshot or digest point.
	//cbvet:ephemeral rebuilt from the pending event each step, never live at quiescence
	scratch uint64
	// hook is func-typed: closures are re-wired on restore by contract.
	hook func()
	// wired is assigned only by the constructor: structural, exempt.
	wired int
	// stats is covered on both sides via the nested manifests.
	stats WidgetStats
}

// NewWidget wires a Widget; constructor writes are not mutations.
func NewWidget() *Widget {
	w := &Widget{}
	w.wired = 1
	return w
}

// Step mutates simulation state.
func (w *Widget) Step() {
	w.count++
	w.fuel += 2
	w.lost++
	w.scratch = 9
	w.hook = nil
	w.stats.Hits++
}

// WidgetState is the snapshot manifest.
type WidgetState struct {
	Count, Fuel uint64
	Stats       WidgetStats
}

// State captures the widget.
func (w *Widget) State() WidgetState {
	return WidgetState{Count: w.count, Fuel: w.fuel, Stats: w.stats}
}

// SetState restores the widget; its writes are plumbing, not mutation.
func (w *Widget) SetState(st WidgetState) {
	w.count = st.Count
	w.fuel = st.Fuel
	w.stats = st.Stats
}

// Digest folds the widget — forgetting fuel and lost.
func (w *Widget) Digest(h *hash) {
	h.U64(w.count)
	w.stats.Digest(h)
}

// WidgetStats has only a digest side (it is snapshotted wholesale as a
// field of WidgetState, like the real per-component Stats structs).
type WidgetStats struct {
	Hits uint64
	// Misses is bumped but never folded.
	Misses uint64 // want "field WidgetStats\\.Misses is mutated \\(in bump\\) but never folded by the digest side \\(Digest\\)"
}

// Digest folds the stats manifest, transitively reached from
// Widget.Digest too.
func (s *WidgetStats) Digest(h *hash) {
	h.U64(s.Hits)
}

func (s *WidgetStats) bump() {
	s.Misses++
}

// plain has no state surface at all: statecov does not apply.
type plain struct {
	n int
}

func (p *plain) poke() { p.n++ }

// helperCovered proves coverage is transitive through package-local
// calls: the field is folded by a helper the root calls.
type helperCovered struct {
	deep uint64
}

func (c *helperCovered) touch() { c.deep++ }

// Digest delegates to foldDeep.
func (c *helperCovered) Digest(h *hash) { foldDeep(c, h) }

func foldDeep(c *helperCovered, h *hash) { h.U64(c.deep) }
