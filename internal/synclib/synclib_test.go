package synclib

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/memtypes"
)

// machineFor builds the machine matching a flavour.
func machineFor(f Flavor, cores int) *machine.Machine {
	cfg := machine.Default(machine.ProtocolMESI)
	switch f {
	case FlavorMESI:
		cfg = machine.Default(machine.ProtocolMESI)
	case FlavorBackoff:
		cfg = machine.Default(machine.ProtocolBackoff)
		cfg.BackoffLimit = 10
	case FlavorCBAll, FlavorCBOne:
		cfg = machine.Default(machine.ProtocolCallback)
	}
	cfg.Cores = cores
	return machine.New(cfg, IsPrivate)
}

func applyInit(m *machine.Machine, l *Layout) {
	for a, v := range l.Init {
		m.Store.StoreWord(a, v)
	}
}

var allFlavors = []Flavor{FlavorMESI, FlavorBackoff, FlavorCBAll, FlavorCBOne}

// lockProgram builds one thread's lock-test program: iters times
// {acquire; counter++ (DRF); release}.
func lockProgram(lock Lock, f Flavor, tid int, counter memtypes.Addr, iters int) *isa.Program {
	b := isa.NewBuilder()
	lock.EmitInit(b, f, tid)
	b.Imm(isa.R1, uint64(iters))
	b.Label("loop")
	lock.EmitAcquire(b, f, tid)
	b.Imm(isa.R4, uint64(counter))
	b.Ld(isa.R5, isa.R4, 0)
	b.Addi(isa.R5, isa.R5, 1)
	b.St(isa.R4, 0, isa.R5)
	lock.EmitRelease(b, f, tid)
	b.Addi(isa.R1, isa.R1, ^uint64(0))
	b.Bnez(isa.R1, "loop")
	b.Done()
	return b.MustBuild()
}

// runLockTest checks mutual exclusion + release/acquire visibility: the
// DRF counter must equal threads*iters at the end.
func runLockTest(t *testing.T, mkLock func(*Layout, int) Lock, f Flavor) {
	t.Helper()
	const cores, iters = 9, 12
	lay := NewLayout()
	lock := mkLock(lay, cores)
	counter := lay.SharedLine()
	m := machineFor(f, cores)
	applyInit(m, lay)
	for tid := 0; tid < cores; tid++ {
		m.Load(tid, lockProgram(lock, f, tid, counter, iters), nil)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("%v: %v", f, err)
	}
	if got := m.Store.Load(counter); got != cores*iters {
		t.Fatalf("%v: counter = %d, want %d (mutual exclusion violated)", f, got, cores*iters)
	}
}

func TestTASLockAllFlavors(t *testing.T) {
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			runLockTest(t, func(l *Layout, n int) Lock { return NewTASLock(l) }, f)
		})
	}
}

func TestTTASLockAllFlavors(t *testing.T) {
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			runLockTest(t, func(l *Layout, n int) Lock { return NewTTASLock(l) }, f)
		})
	}
}

func TestCLHLockAllFlavors(t *testing.T) {
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			runLockTest(t, func(l *Layout, n int) Lock { return NewCLHLock(l, n) }, f)
		})
	}
}

// barrierProgram: each episode writes arr[tid] = e before the barrier and
// checks arr[(tid+1)%N] == e after it, accumulating the neighbour's value
// into R2.
func barrierProgram(bar Barrier, f Flavor, tid, n int, arr memtypes.Addr, episodes int) *isa.Program {
	b := isa.NewBuilder()
	bar.EmitInit(b, f, tid)
	b.Imm(isa.R1, uint64(episodes))
	b.Imm(isa.R2, 0) // checksum
	b.Imm(isa.R3, 1) // episode number
	b.Label("loop")
	b.Imm(isa.R4, uint64(arr)+uint64(tid)*memtypes.LineBytes)
	b.St(isa.R4, 0, isa.R3)
	bar.EmitWait(b, f, tid)
	b.Imm(isa.R4, uint64(arr)+uint64((tid+1)%n)*memtypes.LineBytes)
	b.Ld(isa.R5, isa.R4, 0)
	b.Add(isa.R2, isa.R2, isa.R5)
	// Second barrier: protects the read phase from the neighbour's
	// next-episode write.
	bar.EmitWait(b, f, tid)
	b.Addi(isa.R3, isa.R3, 1)
	b.Addi(isa.R1, isa.R1, ^uint64(0))
	b.Bnez(isa.R1, "loop")
	b.Done()
	return b.MustBuild()
}

func runBarrierTest(t *testing.T, mkBar func(*Layout, int) Barrier, f Flavor) {
	t.Helper()
	const cores, episodes = 9, 8
	lay := NewLayout()
	bar := mkBar(lay, cores)
	arr := lay.SharedRange(cores * memtypes.LineBytes)
	m := machineFor(f, cores)
	applyInit(m, lay)
	for tid := 0; tid < cores; tid++ {
		m.Load(tid, barrierProgram(bar, f, tid, cores, arr, episodes), nil)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("%v: %v", f, err)
	}
	want := uint64(episodes * (episodes + 1) / 2)
	for tid := 0; tid < cores; tid++ {
		if got := m.Cores[tid].Reg(isa.R2); got != want {
			t.Fatalf("%v: thread %d checksum = %d, want %d (barrier ordering violated)",
				f, tid, got, want)
		}
	}
}

func TestSRBarrierAtomicAllFlavors(t *testing.T) {
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			runBarrierTest(t, func(l *Layout, n int) Barrier { return NewSRBarrier(l, n, nil) }, f)
		})
	}
}

func TestSRBarrierWithLockAllFlavors(t *testing.T) {
	// The paper's evaluation variant: counter decremented under a
	// T&T&S lock (Splash-2 POSIX style).
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			runBarrierTest(t, func(l *Layout, n int) Barrier {
				return NewSRBarrier(l, n, NewTTASLock(l))
			}, f)
		})
	}
}

func TestTreeBarrierAllFlavors(t *testing.T) {
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			runBarrierTest(t, func(l *Layout, n int) Barrier { return NewTreeBarrier(l, n) }, f)
		})
	}
}

func TestSignalWaitAllFlavors(t *testing.T) {
	for _, f := range allFlavors {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			// Core 0 produces signals; cores 1..3 each consume their
			// share.
			const waiters, perWaiter = 3, 5
			lay := NewLayout()
			sw := NewSignalWait(lay)
			m := machineFor(f, 4)
			applyInit(m, lay)

			pb := isa.NewBuilder()
			pb.Imm(isa.R1, waiters*perWaiter)
			pb.Label("loop")
			pb.Compute(30)
			sw.EmitSignal(pb, f)
			pb.Addi(isa.R1, isa.R1, ^uint64(0))
			pb.Bnez(isa.R1, "loop")
			pb.Done()
			m.Load(0, pb.MustBuild(), nil)

			for w := 1; w <= waiters; w++ {
				wb := isa.NewBuilder()
				wb.Imm(isa.R1, perWaiter)
				wb.Label("loop")
				sw.EmitWait(wb, f)
				wb.Addi(isa.R1, isa.R1, ^uint64(0))
				wb.Bnez(isa.R1, "loop")
				wb.Done()
				m.Load(w, wb.MustBuild(), nil)
			}
			if err := m.Run(50_000_000); err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			if got := m.Store.Load(sw.C); got != 0 {
				t.Fatalf("%v: %d signals unconsumed", f, got)
			}
		})
	}
}

// TestFigure7ForwardProgress reproduces Figure 7: back-to-back spin loops
// consuming the same value. The guard ld_through preceding each ld_cb
// loop (Section 3.3) is what prevents the deadlock.
func TestFigure7ForwardProgress(t *testing.T) {
	for _, f := range []Flavor{FlavorCBAll, FlavorCBOne} {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			lay := NewLayout()
			flag := lay.SharedLine()
			m := machineFor(f, 4)
			applyInit(m, lay)

			// Writer: flag = 1, once.
			wb := isa.NewBuilder()
			wb.Compute(200)
			wb.Imm(isa.R1, uint64(flag))
			wb.Imm(isa.R2, 1)
			wb.StThrough(isa.R1, 0, isa.R2)
			wb.Done()
			m.Load(0, wb.MustBuild(), nil)

			// Reader: while(flag==0); while(flag==0); — two spin loops
			// that both consume the same write.
			rb := isa.NewBuilder()
			emitSpinAddr(rb, f, flag, RegTmp, exitWhenNonZero)
			emitSpinAddr(rb, f, flag, RegTmp, exitWhenNonZero)
			rb.Done()
			m.Load(1, rb.MustBuild(), nil)

			if err := m.Run(10_000_000); err != nil {
				t.Fatalf("%v: deadlock: %v", f, err)
			}
		})
	}
}

// TestCallbackUsedUnderCallbackFlavors sanity-checks that the callback
// machinery is actually exercised (not silently degenerating to LLC
// spinning).
func TestCallbackUsedUnderCallbackFlavors(t *testing.T) {
	const cores, iters = 9, 10
	lay := NewLayout()
	lock := NewTTASLock(lay)
	counter := lay.SharedLine()
	m := machineFor(FlavorCBOne, cores)
	applyInit(m, lay)
	for tid := 0; tid < cores; tid++ {
		m.Load(tid, lockProgram(lock, FlavorCBOne, tid, counter, iters), nil)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.CBDirAccesses == 0 {
		t.Fatal("callback directory never consulted")
	}
	if st.CBWakes == 0 {
		t.Fatal("no callbacks were serviced: contention should block readers")
	}
}

// TestBackoffReducesLLCAccesses checks the Figure 1 trade-off at small
// scale: more exponentiations => fewer LLC accesses from spinning.
func TestBackoffReducesLLCAccesses(t *testing.T) {
	run := func(limit int) uint64 {
		const cores, iters = 9, 10
		lay := NewLayout()
		lock := NewTTASLock(lay)
		counter := lay.SharedLine()
		cfg := machine.Default(machine.ProtocolBackoff)
		cfg.Cores = cores
		cfg.BackoffLimit = limit
		m := machine.New(cfg, IsPrivate)
		applyInit(m, lay)
		for tid := 0; tid < cores; tid++ {
			m.Load(tid, lockProgram(lock, FlavorBackoff, tid, counter, iters), nil)
		}
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats().LLCSyncAccesses
	}
	noBackoff := run(0)
	backoff10 := run(10)
	if backoff10 >= noBackoff {
		t.Fatalf("BackOff-10 sync LLC accesses (%d) should be below BackOff-0 (%d)",
			backoff10, noBackoff)
	}
}

func TestFlavorStrings(t *testing.T) {
	for _, f := range allFlavors {
		if f.String() == "" {
			t.Fatal("empty flavour name")
		}
	}
	if fmt.Sprint(Flavor(99)) == "" {
		t.Fatal("unknown flavour should still print")
	}
}

// TestQuiesceProtocolRunsCallbackEncodings: the MONITOR/MWAIT extension
// machine executes the callback-all encodings; every construct must stay
// correct when ld_cb maps to a monitored load.
func TestQuiesceProtocolRunsCallbackEncodings(t *testing.T) {
	const cores, iters = 9, 10
	machineQ := func() *machine.Machine {
		cfg := machine.Default(machine.ProtocolQuiesce)
		cfg.Cores = cores
		return machine.New(cfg, IsPrivate)
	}

	// Mutual exclusion with each lock.
	for _, mk := range []func(*Layout) Lock{
		func(l *Layout) Lock { return NewTTASLock(l) },
		func(l *Layout) Lock { return NewCLHLock(l, cores) },
	} {
		lay := NewLayout()
		lock := mk(lay)
		counter := lay.SharedLine()
		m := machineQ()
		applyInit(m, lay)
		for tid := 0; tid < cores; tid++ {
			m.Load(tid, lockProgram(lock, FlavorCBAll, tid, counter, iters), nil)
		}
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		if got := m.Store.Load(counter); got != cores*iters {
			t.Fatalf("quiesce: counter = %d, want %d", got, cores*iters)
		}
		if m.Stats().MonitorArms == 0 {
			t.Fatal("quiesce machine never armed a monitor")
		}
	}

	// Barrier ordering.
	lay := NewLayout()
	bar := NewTreeBarrier(lay, cores)
	arr := lay.SharedRange(cores * memtypes.LineBytes)
	m := machineQ()
	applyInit(m, lay)
	for tid := 0; tid < cores; tid++ {
		m.Load(tid, barrierProgram(bar, FlavorCBAll, tid, cores, arr, 6), nil)
	}
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	want := uint64(6 * 7 / 2)
	for tid := 0; tid < cores; tid++ {
		if got := m.Cores[tid].Reg(isa.R2); got != want {
			t.Fatalf("quiesce barrier: thread %d checksum %d, want %d", tid, got, want)
		}
	}
}

// TestQueueLockProtocolMutualExclusion: the VIPS-M blocking-bit queue at
// the LLC (the lock mechanism the paper contrasts callbacks against) must
// preserve mutual exclusion with the plain T&S encoding — failing
// acquires block at the controller instead of spinning.
func TestQueueLockProtocolMutualExclusion(t *testing.T) {
	const cores, iters = 9, 10
	for _, mk := range []func(*Layout) Lock{
		func(l *Layout) Lock { return NewTASLock(l) },
		func(l *Layout) Lock { return NewTTASLock(l) },
	} {
		lay := NewLayout()
		lock := mk(lay)
		counter := lay.SharedLine()
		cfg := machine.Default(machine.ProtocolQueueLock)
		cfg.Cores = cores
		m := machine.New(cfg, IsPrivate)
		applyInit(m, lay)
		for tid := 0; tid < cores; tid++ {
			m.Load(tid, lockProgram(lock, FlavorBackoff, tid, counter, iters), nil)
		}
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		if got := m.Store.Load(counter); got != cores*iters {
			t.Fatalf("queue-lock: counter = %d, want %d", got, cores*iters)
		}
	}
}
