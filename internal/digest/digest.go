// Package digest provides the canonical state-hashing primitive behind
// the replay subsystem's divergence bisection: every simulator component
// folds its mutable state into a Hash at a cycle boundary, and two runs
// are "in agreement" at that boundary exactly when their sums match.
//
// The hash is FNV-1a generalized to 64-bit symbols: each folded value
// is one xor-then-multiply round over the full accumulator. It is tiny,
// allocation-free, and — unlike maphash or anything keyed by a
// process-random seed — identical across processes and runs, which is
// what makes digests comparable between a recording and a later replay,
// or between the two sides of a bisection. Folding whole words instead
// of FNV's byte-at-a-time loop matters: a mark digests every cache line
// of a 64-tile machine, and the 8x fewer rounds are the difference
// between recording overhead and recording noise.
//
// Detection strength: both round operations are bijections on the
// accumulator (xor with a constant; multiplication by an odd prime mod
// 2^64), so two equal-length fold sequences that differ in exactly one
// value always produce different sums — single divergences are caught
// with certainty, not probability. Multiple differences can cancel only
// with the usual ~1-in-2^64 chance, the same as byte-wise FNV; a
// bisection compares digests at thousands of boundaries and a single
// collision would only widen the reported window by one mark.
//
// Determinism contract: callers must fold state in a canonical order
// (sorted map keys, fixed component order). The helpers hash exactly the
// bytes of the values given — there is no reflection and no field
// discovery — so a digest function reads as a manifest of what state the
// component considers behaviorally meaningful.
package digest

// FNV-1a 64-bit parameters (FNV-0 offset basis and prime).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash accumulates an FNV-1a 64-bit digest. The zero value is NOT ready
// to use; start with New (the offset basis matters).
type Hash struct {
	sum uint64
}

// New returns a hash at the FNV-1a offset basis.
func New() *Hash {
	return &Hash{sum: offset64}
}

// U64 folds one 64-bit value in a single xor-multiply round.
//
//cbsim:hotpath
func (h *Hash) U64(v uint64) {
	h.sum = (h.sum ^ v) * prime64
}

// Int folds an int (as its 64-bit two's-complement image).
//
//cbsim:hotpath
func (h *Hash) Int(v int) { h.U64(uint64(v)) }

// Bool folds a boolean as 0/1.
//
//cbsim:hotpath
func (h *Hash) Bool(v bool) {
	if v {
		h.U64(1)
	} else {
		h.U64(0)
	}
}

// Str folds a string's bytes followed by its length (the length
// terminator keeps "ab","c" distinct from "a","bc").
//
//cbsim:hotpath
func (h *Hash) Str(s string) {
	sum := h.sum
	for i := 0; i < len(s); i++ {
		sum ^= uint64(s[i])
		sum *= prime64
	}
	h.sum = sum
	h.U64(uint64(len(s)))
}

// Sum returns the digest so far. The hash remains usable.
func (h *Hash) Sum() uint64 { return h.sum }
