// Package determinism defines the cbvet analyzer that keeps the
// simulator core bit-reproducible.
//
// Every headline result of this reproduction rests on runs being
// byte-identical: serial vs parallel sweeps (PR 1), tracing on vs off
// (PR 3), and the content-addressed result cache (PR 2) all compare raw
// Stats bytes. The simulator core must therefore never consult wall
// clocks, the global (shared, racily-seeded) math/rand source, or Go's
// randomized map iteration order, and must never spawn goroutines — a
// simulated machine is single-threaded by contract, with concurrency
// confined to the sweep worker pool in internal/experiments.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags nondeterminism sources in simulator-core packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism in simulator-core packages

Flags, in internal/{sim,machine,cpu,core,isa,mesi,vips,noc,cache,mem,
memtypes,synclib,workload,chaos,digest,replay,trace}:

  - calls to wall-clock functions (time.Now, time.Since, ...): simulated
    time is kernel cycles, never host time
  - top-level math/rand functions (rand.Intn, ...): they draw from the
    process-global, racily shared source; use rand.New(rand.NewSource(seed))
    so every stream is owned and seeded
  - range over a map: iteration order is randomized per run; extract and
    sort the keys, or annotate the statement //cbvet:unordered when the
    loop body is provably order-independent (pure accumulation)
  - go statements: machines are single-goroutine by contract; concurrency
    belongs to the sweep worker pool in internal/experiments`,
	Run: run,
}

// wallClock lists time-package functions that read or depend on the host
// clock. (Constants and duration arithmetic remain fine.)
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// randAllowed lists math/rand package-level functions that construct
// owned generators rather than drawing from the global source.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimCore(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if len(file.Decls) > 0 && pass.InTestFile(file.Pos()) {
			continue
		}
		ld := analysis.NewLineDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkIdent(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, ld, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in simulator-core package %s: machines are single-goroutine; use the sweep worker pool in internal/experiments", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// checkIdent flags uses of wall-clock and global-source rand functions.
func checkIdent(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(id.Pos(), "time.%s in simulator-core package: simulated time is kernel cycles, never host time", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[fn.Name()] {
			pass.Reportf(id.Pos(), "global math/rand.%s draws from the shared process source; use rand.New(rand.NewSource(seed)) for a deterministic owned stream", fn.Name())
		}
	}
}

// checkRange flags iteration over maps unless waived.
func checkRange(pass *analysis.Pass, ld *analysis.LineDirectives, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if ld.Covers(rs.Pos(), "cbvet:unordered") {
		return
	}
	pass.Reportf(rs.Pos(), "range over map in simulator-core package: iteration order is randomized; sort the keys first, or annotate //cbvet:unordered if the body is order-independent")
}
