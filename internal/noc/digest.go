package noc

import (
	"repro/internal/digest"
)

// Digest folds the mesh's mutable state: per-link idle clocks and busy
// accumulators, traffic counters, and the live-message count. The chaos
// FIFO floors are deliberately excluded — chaosClamp records a floor on
// every send once fault injection is enabled, even for zero-cycle
// draws, so including them would make a chaos run digest-diverge from a
// fault-free twin before any fault materializes. An injected delay that
// actually perturbs traffic still shows up here, through linkFree and
// the downstream timing it shifts.
func (m *Mesh) Digest(h *digest.Hash) {
	for n := range m.linkFree {
		for d := 0; d < int(numDirs); d++ {
			h.U64(m.linkFree[n][d])
			h.U64(m.linkBusy[n][d])
		}
	}
	h.Int(m.live)
	m.stats.Digest(h)
}

// Digest folds every Stats field in declaration order. This is the
// struct's digest manifest: a new counter must be folded here too, or
// replay verification goes blind to it.
func (s *Stats) Digest(h *digest.Hash) {
	h.U64(s.Messages)
	h.U64(s.Flits)
	h.U64(s.FlitHops)
	h.U64(s.Hops)
	h.U64(s.LinkWait)
}
