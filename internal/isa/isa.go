// Package isa defines the micro-op instruction set executed by the
// simulated in-order cores, mirroring the assembly of Figures 8-19 in the
// paper: ALU ops and branches, ordinary loads/stores, the racy
// ld_through/ld_cb/st_through/st_cb1/st_cb0 operations, atomics composed
// of {ld|ld_cb}&{st_cb0|st_cb1|st_cbA}, the self_invl/self_down fences,
// and the exponential back-off pseudo-ops used by the VIPS-M baseline.
//
// Programs are built with a Builder that supports symbolic labels, so the
// synchronization algorithms read almost line-for-line like the paper's
// figures.
package isa

import (
	"fmt"

	"repro/internal/memtypes"
)

// Reg names one of the 32 general-purpose registers of a simulated core.
type Reg uint8

// NumRegs is the register file size.
const NumRegs = 32

// Conventional register names used by the synchronization library.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Opcode enumerates the micro-op kinds.
type Opcode uint8

const (
	Nop Opcode = iota

	// ALU and control flow. All take 1 cycle.
	Imm      // rd <- imm
	Mov      // rd <- rs
	Add      // rd <- rs + rt
	Addi     // rd <- rs + imm
	Sub      // rd <- rs - rt
	Xori     // rd <- rs ^ imm (sense reversal: not $s == xori $s,1)
	Beq      // if rs == rt goto target
	Bne      // if rs != rt goto target
	Beqi     // if rs == imm goto target
	Bnei     // if rs != imm goto target
	Jmp      // goto target
	Compute  // advance imm cycles of local work
	ComputeR // advance rs cycles of local work

	// Memory operations. Effective address = regs[Base] + Offset.
	Ld    // rd <- mem (DRF cached load)
	St    // mem <- rs (DRF cached store)
	LdT   // rd <- mem, ld_through
	LdCB  // rd <- mem, ld_cb (blocks in the callback directory)
	StT   // mem <- rs, st_through (st_cbA)
	StCB1 // mem <- rs, st_cb1
	StCB0 // mem <- rs, st_cb0
	RMW   // rd <- old value; atomic per RMWOp/LdCB/StMode fields

	SelfInvl // acquire fence: self-invalidate shared L1 contents
	SelfDown // release fence: self-downgrade (write through) dirty L1 data

	// Back-off pseudo-ops for the VIPS-M LLC-spinning baseline.
	BackoffReset // reset this core's back-off interval
	BackoffWait  // stall for the current interval, then grow it

	// Sync phase markers for statistics attribution (not architectural).
	SyncBegin // imm = SyncKind
	SyncEnd   // imm = SyncKind

	Done // thread finished
)

var opcodeNames = [...]string{
	Nop: "nop", Imm: "imm", Mov: "mov", Add: "add", Addi: "addi",
	Sub: "sub", Xori: "xori", Beq: "beq", Bne: "bne", Beqi: "beqi",
	Bnei: "bnei", Jmp: "jmp", Compute: "compute", ComputeR: "computer",
	Ld: "ld", St: "st", LdT: "ld_through", LdCB: "ld_cb",
	StT: "st_through", StCB1: "st_cb1", StCB0: "st_cb0", RMW: "rmw",
	SelfInvl: "self_invl", SelfDown: "self_down",
	BackoffReset: "backoff_reset", BackoffWait: "backoff_wait",
	SyncBegin: "sync_begin", SyncEnd: "sync_end", Done: "done",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// IsMem reports whether the opcode accesses memory through the L1 port.
func (o Opcode) IsMem() bool {
	switch o {
	case Ld, St, LdT, LdCB, StT, StCB1, StCB0, RMW, SelfInvl, SelfDown:
		return true
	}
	return false
}

// SyncKind labels a synchronization phase for latency/LLC-access
// attribution (Figures 1 and 20).
type SyncKind uint8

const (
	SyncNone SyncKind = iota
	SyncAcquire
	SyncRelease
	SyncBarrier
	SyncWait
	SyncSignal
	NumSyncKinds
)

var syncKindNames = [...]string{
	SyncNone: "none", SyncAcquire: "acquire", SyncRelease: "release",
	SyncBarrier: "barrier", SyncWait: "wait", SyncSignal: "signal",
}

func (s SyncKind) String() string {
	if int(s) < len(syncKindNames) {
		return syncKindNames[s]
	}
	return fmt.Sprintf("SyncKind(%d)", uint8(s))
}

// SyncKindFromName is the inverse of String for the defined kinds; ok is
// false for unknown names. Trace consumers use it to decode the kind
// carried in an event's Note string.
func SyncKindFromName(name string) (SyncKind, bool) {
	for k, n := range syncKindNames {
		if n == name {
			return SyncKind(k), true
		}
	}
	return SyncNone, false
}

// Instr is one decoded micro-op.
type Instr struct {
	Op Opcode

	Rd, Rs, Rt Reg
	ImmVal     uint64
	Target     int // resolved branch target (instruction index)

	// Memory addressing: effective address = regs[Base] + Offset.
	Base   Reg
	Offset int64

	// RMW description (Op == RMW).
	RMWOp    memtypes.RMWOp
	RMWLdCB  bool             // load half is ld_cb
	RMWSt    memtypes.CBWrite // store half semantics
	Expect   uint64           // expected value (t&s, cas)
	ArgReg   Reg              // argument register (if ArgIsReg)
	ArgImm   uint64           // argument immediate (if !ArgIsReg)
	ArgIsReg bool

	// Label is the symbolic target name, kept for disassembly.
	Label string
}

func (in Instr) String() string {
	switch in.Op {
	case Imm:
		return fmt.Sprintf("imm r%d, %d", in.Rd, in.ImmVal)
	case Beq, Bne:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rs, in.Rt, in.Label)
	case Beqi, Bnei:
		return fmt.Sprintf("%s r%d, %d, %s", in.Op, in.Rs, in.ImmVal, in.Label)
	case Jmp:
		return fmt.Sprintf("jmp %s", in.Label)
	case Ld, LdT, LdCB:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Offset, in.Base)
	case St, StT, StCB1, StCB0:
		return fmt.Sprintf("%s %d(r%d), r%d", in.Op, in.Offset, in.Base, in.Rs)
	case RMW:
		ld := "ld"
		if in.RMWLdCB {
			ld = "ld_cb"
		}
		return fmt.Sprintf("%s{%s&st_%s} r%d, %d(r%d)", in.RMWOp, ld, in.RMWSt, in.Rd, in.Offset, in.Base)
	default:
		return in.Op.String()
	}
}

// Program is an executable sequence of micro-ops.
type Program struct {
	Ins []Instr
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Ins) }
