package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestSetupByNameErrors pins the error paths: every standard setup
// resolves round-trip, and unknown names fail with an error naming the
// offender.
func TestSetupByNameErrors(t *testing.T) {
	for _, want := range StandardSetups() {
		got, err := SetupByName(want.Name)
		if err != nil {
			t.Fatalf("SetupByName(%q): %v", want.Name, err)
		}
		if got != want {
			t.Fatalf("SetupByName(%q) = %+v, want %+v", want.Name, got, want)
		}
	}
	for _, bad := range []string{"", "cb-one", "CB-ONE", "BackOff", "BackOff-7", "Invalidation "} {
		s, err := SetupByName(bad)
		if err == nil {
			t.Fatalf("SetupByName(%q) = %+v, want error", bad, s)
		}
		if want := fmt.Sprintf("%q", bad); !strings.Contains(err.Error(), want) {
			t.Errorf("SetupByName(%q) error %q does not name the input", bad, err)
		}
	}
}

// TestRunBenchmarkCanceledContext pins the satellite contract: a run
// under an already-canceled context returns ctx.Err() as the run error.
func TestRunBenchmarkCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := SetupByName("CB-One")
	_, err = RunBenchmark(p, s, workload.StyleScalable, Options{Cores: 4, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunBenchmarkCancelMidRun cancels while the simulation is running
// and expects a prompt, clean abort (polled between kernel events).
func TestRunBenchmarkCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p, err := workload.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := SetupByName("Invalidation")
	started := make(chan struct{})
	// Full 64-core scale: seconds of simulation, so the cancel lands
	// mid-run with a huge margin (the test finishes in milliseconds when
	// cancellation works).
	o := Options{Cores: 64, Context: ctx, Progress: func(e RunEvent) {
		if !e.Done {
			close(started)
		}
	}}
	errCh := make(chan error, 1)
	go func() {
		_, err := RunBenchmark(p, s, workload.StyleScalable, o)
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation did not stop after cancel")
	}
}

// TestSweepCancellation pins Sweep's contract under a canceled context:
// remaining cells are skipped and ctx.Err() is returned.
func TestSweepCancellation(t *testing.T) {
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := Sweep(Options{Parallelism: par, Context: ctx}, 100, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		if n := ran.Load(); n >= 100 {
			t.Fatalf("par=%d: all %d cells ran despite cancellation", par, n)
		}
	}
}

// TestSweepLowestError pins the deterministic error contract Sweep
// inherits from the parallel runner.
func TestSweepLowestError(t *testing.T) {
	boom := func(i int) error {
		if i == 7 || i == 3 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	}
	for _, par := range []int{1, 8} {
		err := Sweep(Options{Parallelism: par}, 16, boom)
		if err == nil || err.Error() != "cell 3 failed" {
			t.Fatalf("par=%d: err = %v, want lowest-index failure", par, err)
		}
	}
}

// TestProgressEvents pins the progress hook: one start and one done
// event per cell, with simulated cycles and wall time on completion.
func TestProgressEvents(t *testing.T) {
	var events []RunEvent
	o := Options{
		Cores:      16,
		Benchmarks: []string{"fft", "lu"},
		Progress:   func(e RunEvent) { events = append(events, e) },
	}
	inval, _ := SetupByName("Invalidation")
	cbOne, _ := SetupByName("CB-One")
	setups := []Setup{inval, cbOne}
	o.Parallelism = 1 // keep the event order deterministic for the test
	if _, err := RunSuite(setups, workload.StyleScalable, o); err != nil {
		t.Fatal(err)
	}
	if len(events) != 8 { // 2 benchmarks x 2 setups x (start + done)
		t.Fatalf("got %d progress events, want 8", len(events))
	}
	for i := 0; i < len(events); i += 2 {
		start, done := events[i], events[i+1]
		if start.Done || !done.Done {
			t.Fatalf("event pair %d out of order: %+v / %+v", i/2, start, done)
		}
		if start.Benchmark != done.Benchmark || start.Setup != done.Setup {
			t.Fatalf("event pair %d mismatched: %+v / %+v", i/2, start, done)
		}
		if done.Cycles == 0 || done.Wall <= 0 || done.Err != nil {
			t.Fatalf("done event %d incomplete: %+v", i/2, done)
		}
	}
}
