package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/service"
)

// maxRPCBody bounds how much of a peer response is read: larger than any
// cell payload, small enough that a confused peer cannot balloon memory.
const maxRPCBody = 32 << 20

// Sentinel errors from the hardened peer client.
var (
	// ErrPeerDown means the peer's circuit breaker is open: the call was
	// refused without touching the network.
	ErrPeerDown = errors.New("cluster: peer circuit open")
	// ErrUnknownPeer means the peer name is not in the static membership.
	ErrUnknownPeer = errors.New("cluster: unknown peer")
)

// ClientConfig configures the hardened peer client.
type ClientConfig struct {
	// Peers maps peer name -> base URL (no trailing slash).
	Peers map[string]string
	// Transport overrides the HTTP transport (tests inject the
	// fault-injecting in-process fabric here). Nil uses the default.
	Transport http.RoundTripper
	// Timeout bounds each RPC attempt (default 2s).
	Timeout time.Duration
	// Retries is how many backoff re-attempts follow a failed attempt
	// (default 2; only transport failures are retried — any HTTP
	// response, whatever its status, means the peer is alive).
	Retries int
	// BreakerThreshold / BreakerCooldown configure the per-peer circuit
	// breaker (defaults 3 failures / 5s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeDelay is how long a hedged read waits for the owner before
	// launching the backup request against a replica (default 50ms).
	HedgeDelay time.Duration
	// Seed drives the backoff jitter stream (splitmix64, like
	// internal/chaos): a fixed seed replays the same jitter schedule.
	Seed uint64
	// Metrics receives per-peer RPC latency, error, retry, and breaker
	// series. Nil registers into a throwaway registry.
	Metrics *obs.ClusterMetrics
	// Now is the breaker clock (tests inject a fake; nil = wall clock).
	Now func() time.Time
}

func (c ClientConfig) fill() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewClusterMetrics(obs.NewRegistry())
	}
	return c
}

// Client is the hardened HTTP client every peer RPC goes through:
// per-attempt timeouts, bounded exponential backoff with full jitter,
// a per-peer circuit breaker, and hedged cache reads. All methods are
// safe for concurrent use.
type Client struct {
	cfg     ClientConfig
	hc      *http.Client
	metrics *obs.ClusterMetrics

	mu  sync.Mutex
	rng *chaos.Rand

	peers map[string]*peer
}

type peer struct {
	name      string
	url       string
	breaker   *Breaker
	pm        *obs.PeerMetrics
	lastOpens atomic.Uint64
}

// NewClient builds a client over the configured peers.
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.fill()
	c := &Client{
		cfg:     cfg,
		hc:      &http.Client{Transport: cfg.Transport},
		metrics: cfg.Metrics,
		rng:     chaos.NewRand(cfg.Seed),
		peers:   make(map[string]*peer, len(cfg.Peers)),
	}
	for name, url := range cfg.Peers {
		c.peers[name] = &peer{
			name:    name,
			url:     url,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now),
			pm:      c.metrics.Peer(name),
		}
	}
	return c
}

// Peers returns the peer names, sorted.
func (c *Client) Peers() []string {
	names := make([]string, 0, len(c.peers))
	for n := range c.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BreakerState returns the breaker state for the named peer
// (obs.BreakerClosed when unknown, ok=false).
func (c *Client) BreakerState(name string) (state int, ok bool) {
	p := c.peers[name]
	if p == nil {
		return obs.BreakerClosed, false
	}
	return p.breaker.State(), true
}

// jitter draws a full-jitter backoff sleep in [0, max) from the seeded
// stream.
func (c *Client) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Uint64() % uint64(max))
}

// syncBreaker pours the peer's breaker state into its gauge and counts
// any new closed-to-open transitions.
func (c *Client) syncBreaker(p *peer) {
	p.pm.BreakerState.Set(float64(p.breaker.State()))
	opens := p.breaker.Opens()
	if prev := p.lastOpens.Swap(opens); opens > prev {
		p.pm.BreakerOpens.Add(opens - prev)
	}
}

// do performs one logical RPC against the named peer: breaker admission,
// then up to 1+Retries attempts, each with its own timeout, separated by
// exponential backoff with full jitter. Any HTTP response — whatever the
// status code — counts as peer-alive (breaker success) and is returned;
// only transport failures are retried and chargeable to the breaker.
func (c *Client) do(ctx context.Context, peerName, method, path string, body []byte) (status int, data []byte, err error) {
	p := c.peers[peerName]
	if p == nil {
		return 0, nil, fmt.Errorf("%w: %q", ErrUnknownPeer, peerName)
	}
	if !p.breaker.Allow() {
		c.syncBreaker(p)
		return 0, nil, fmt.Errorf("%w: %s", ErrPeerDown, peerName)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			p.pm.Retries.Inc()
			backoff := c.jitter(c.cfg.Timeout / 4 << attempt)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				lastErr = ctx.Err()
				attempt = c.cfg.Retries // exit after accounting below
				continue
			}
		}
		status, data, lastErr = c.attempt(ctx, p, method, path, body)
		if lastErr == nil {
			p.breaker.Record(true)
			c.syncBreaker(p)
			return status, data, nil
		}
		if ctx.Err() != nil {
			break
		}
	}
	p.breaker.Record(false)
	c.syncBreaker(p)
	return 0, nil, fmt.Errorf("cluster: %s %s on %s: %w", method, path, peerName, lastErr)
}

func (c *Client) attempt(ctx context.Context, p *peer, method, path string, body []byte) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, p.url+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	p.pm.RPCSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		p.pm.RPCErrors.Inc()
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRPCBody))
	if err != nil {
		p.pm.RPCErrors.Inc()
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// GetCell probes the peer's cache for key: (data, true) on a hit, ok =
// false on a clean miss, err on anything else.
func (c *Client) GetCell(ctx context.Context, peerName, key string) (data []byte, ok bool, err error) {
	status, data, err := c.do(ctx, peerName, http.MethodGet, "/v1/cluster/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case http.StatusOK:
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cluster: cache get on %s: status %d", peerName, status)
	}
}

// PutFill gossips a cache fill to the peer.
func (c *Client) PutFill(ctx context.Context, peerName, key string, data []byte) error {
	status, _, err := c.do(ctx, peerName, http.MethodPut, "/v1/cluster/cache/"+key, data)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("cluster: fill on %s: status %d", peerName, status)
	}
	return nil
}

// ComputeCell asks the peer to resolve spec (cache or fresh simulation).
// A 429/503 means the peer is busy or draining — the caller falls back
// to another path or computes locally.
func (c *Client) ComputeCell(ctx context.Context, peerName string, spec service.CellSpec) ([]byte, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	status, data, err := c.do(ctx, peerName, http.MethodPost, "/v1/cluster/cell", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: compute on %s: status %d: %s", peerName, status, truncate(data, 200))
	}
	return data, nil
}

// SendJournal replicates one journal record (stamped with its origin
// node) to the peer.
func (c *Client) SendJournal(ctx context.Context, peerName, origin string, rec service.JournalRecord) error {
	body, err := json.Marshal(replicatedRecord{Origin: origin, Record: rec})
	if err != nil {
		return err
	}
	status, _, err := c.do(ctx, peerName, http.MethodPost, "/v1/cluster/journal", body)
	if err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("cluster: journal to %s: status %d", peerName, status)
	}
	return nil
}

// Probe fetches the peer's cluster status and returns its load snapshot.
func (c *Client) Probe(ctx context.Context, peerName string) (service.LoadInfo, error) {
	status, data, err := c.do(ctx, peerName, http.MethodGet, "/v1/cluster/status", nil)
	if err != nil {
		return service.LoadInfo{}, err
	}
	if status != http.StatusOK {
		return service.LoadInfo{}, fmt.Errorf("cluster: status on %s: %d", peerName, status)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return service.LoadInfo{}, err
	}
	return st.Load, nil
}

// HedgedGetCell is GetCell with a latency hedge: the owner is asked
// first, and if it has not answered within HedgeDelay (or fails, or
// misses) the backup replica is asked too; the first hit wins. Backup ==
// "" degrades to a plain GetCell against the owner.
func (c *Client) HedgedGetCell(ctx context.Context, owner, backup, key string) (data []byte, ok bool, err error) {
	if backup == "" {
		return c.GetCell(ctx, owner, key)
	}
	type res struct {
		data       []byte
		ok         bool
		err        error
		fromBackup bool
	}
	ch := make(chan res, 2)
	get := func(peerName string, fromBackup bool) {
		d, ok, err := c.GetCell(ctx, peerName, key)
		ch <- res{d, ok, err, fromBackup}
	}
	go get(owner, false)
	hedged := false
	launchBackup := func() {
		if !hedged {
			hedged = true
			c.metrics.HedgedReads.Inc()
			go get(backup, true)
		}
	}
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil && r.ok {
				if r.fromBackup {
					c.metrics.HedgeWins.Inc()
				}
				return r.data, true, nil
			}
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			// A failed or missing owner makes the hedge immediate.
			if !hedged {
				launchBackup()
				pending++
			}
		case <-timer.C:
			if !hedged {
				launchBackup()
				pending++
			}
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return nil, false, firstErr
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
