// Package obs is the shared observability layer: a Prometheus-style
// metrics registry (counters, gauges, fixed-bucket histograms) with text
// exposition, plus the simulator-level metric set built on it.
//
// The registry is designed for the simulator's hot paths: counter and
// histogram updates are single atomic operations (no locks, no
// allocations), so per-event instrumentation costs nothing when no
// registry is attached and a handful of nanoseconds when one is. The
// daemon (internal/service) exposes a registry at GET /metrics; the
// experiment harness feeds per-run simulator samples into the same
// primitives.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus exposition type of a metric family.
type MetricType string

// The exposition types the registry supports.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// ---------------------------------------------------------------- counters

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// ------------------------------------------------------------------ gauges

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// -------------------------------------------------------------- histograms

// Histogram counts observations into fixed buckets (cumulative at
// exposition, like Prometheus). Observe is a few atomic adds: safe for
// concurrent use from sweep workers, allocation-free.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket; an implicit
	// +Inf bucket follows.
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation, or 0 before any.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (the +Inf bucket is the final element, equal to Count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor: the standard shape for cycle-latency
// histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds starting at start
// with the given step.
func LinearBuckets(start, step float64, n int) []float64 {
	if n <= 0 {
		panic("obs: LinearBuckets needs n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// ---------------------------------------------------------------- registry

// series is one label-distinct child of a family.
type series struct {
	labels    []Label
	signature string // canonical rendering of labels, for dedup and sort
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    MetricType
	series []*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration takes a lock; the returned handles are
// lock-free. Registering the same name+labels again returns the existing
// handle, so packages can idempotently declare the metrics they touch.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and line feed (backslash first, so
// the other escapes are not themselves escaped).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// lookup finds or creates the family and the series for name+labels,
// panicking on a type conflict (always a programming error).
func (r *Registry) lookup(name, help string, typ MetricType, labels []Label) (*series, bool) {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	sig := signature(labels)
	for _, s := range f.series {
		if s.signature == sig {
			return s, false
		}
	}
	s := &series{labels: append([]Label(nil), labels...), signature: sig}
	f.series = append(f.series, s)
	return s, true
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s, fresh := r.lookup(name, help, TypeCounter, labels)
	if fresh {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s, fresh := r.lookup(name, help, TypeGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (queue depths, cache sizes: state that already lives elsewhere).
// Re-registering the same name+labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s, _ := r.lookup(name, help, TypeGauge, labels)
	s.gaugeFn = fn
}

// Histogram returns the fixed-bucket histogram registered under
// name+labels, creating it on first use. buckets are upper bounds; an
// implicit +Inf bucket is added.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s, fresh := r.lookup(name, help, TypeHistogram, labels)
	if fresh {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (families sorted by name, series by label signature).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	// Snapshot the series slices so rendering (which calls user gauge
	// functions) happens outside the lock.
	type famSnap struct {
		name, help string
		typ        MetricType
		series     []*series
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		snaps[i] = famSnap{f.name, f.help, f.typ, append([]*series(nil), f.series...)}
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range snaps {
		sort.Slice(f.series, func(i, j int) bool {
			return f.series[i].signature < f.series[j].signature
		})
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case TypeCounter:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.signature, ""), formatFloat(float64(s.counter.Value())))
			case TypeGauge:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else if s.gauge != nil {
					v = s.gauge.Value()
				}
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.signature, ""), formatFloat(v))
			case TypeHistogram:
				bounds, cum := s.hist.Buckets()
				for i, ub := range bounds {
					le := fmt.Sprintf("le=%q", formatFloat(ub))
					fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", s.signature, le), cum[i])
				}
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", s.signature, `le="+Inf"`), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name+"_sum", s.signature, ""), formatFloat(s.hist.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", s.signature, ""), s.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesName renders name{labels,extra} with empty braces elided.
func seriesName(name, sig, extra string) string {
	switch {
	case sig == "" && extra == "":
		return name
	case sig == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + sig + "}"
	}
	return name + "{" + sig + "," + extra + "}"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
