package experiments

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// SuiteResults caches one full sweep: every benchmark under every setup.
type SuiteResults struct {
	Setups  []Setup
	Names   []string
	Results map[string]map[string]Result // benchmark -> setup -> result
}

// RunSuite runs all 19 benchmarks under the given setups with one
// synchronization style. Cells run across Options.Parallelism worker
// goroutines, each on its own Machine and Kernel; the collected results
// are byte-identical to a serial sweep (each simulation is fully
// deterministic and shares no state with its siblings).
func RunSuite(setups []Setup, style workload.SyncStyle, o Options) (*SuiteResults, error) {
	o = o.fill()
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	type cell struct {
		p workload.Profile
		s Setup
	}
	var cells []cell
	for _, p := range ps {
		for _, s := range setups {
			cells = append(cells, cell{p, s})
		}
	}
	results := make([]Result, len(cells))
	err = o.forEach(len(cells), func(i int) error {
		c := cells[i]
		o.Logf("run %-14s %-13s (%s)", c.p.Name, c.s.Name, style)
		res, err := RunBenchmark(c.p, c.s, style, o)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	sr := &SuiteResults{
		Setups:  setups,
		Results: make(map[string]map[string]Result),
	}
	for _, p := range ps {
		sr.Names = append(sr.Names, p.Name)
		sr.Results[p.Name] = make(map[string]Result, len(setups))
	}
	for i, c := range cells {
		sr.Results[c.p.Name][c.s.Name] = results[i]
	}
	return sr, nil
}

// syncRow extracts per-benchmark sync LLC accesses and mean episode
// latency for the given kinds from a suite sweep, returning the geomean
// across benchmarks per setup (the aggregation of Figures 1 and 20).
func syncRow(sr *SuiteResults, setups []Setup, llcKinds []isa.SyncKind, latKind isa.SyncKind) (llc, lat []float64) {
	llc = make([]float64, len(setups))
	lat = make([]float64, len(setups))
	for i, s := range setups {
		var accs, lats []float64
		for _, name := range sr.Names {
			st := sr.Results[name][s.Name].Stats
			var a uint64
			for _, k := range llcKinds {
				a += st.LLCSyncByKind[k]
			}
			if st.SyncEntries[latKind] == 0 {
				continue // benchmark does not use this construct
			}
			accs = append(accs, float64(a))
			lats = append(lats, st.SyncLatency(latKind))
		}
		llc[i] = metrics.GeoMean(accs)
		lat[i] = metrics.GeoMean(lats)
	}
	return llc, lat
}

// Fig20 derives the per-construct synchronization behaviour from two
// suite sweeps (scalable: CLH + TreeSR; naive: T&T&S + SR): geomean over
// benchmarks of sync-attributed LLC accesses and mean episode latency,
// normalized to the highest value per construct as in the paper. The SR
// barrier row includes its embedded T&T&S lock accesses (Section 5.2:
// the counter is decremented under a lock).
func Fig20(scal, naive *SuiteResults) (llc, lat *metrics.Table) {
	setups := scal.Setups
	cols := make([]string, len(setups))
	for i, s := range setups {
		cols[i] = s.Name
	}
	llc = metrics.NewTable("Figure 20 (LLC accesses, normalized to highest)", cols...)
	lat = metrics.NewTable("Figure 20 (latency, normalized to highest)", cols...)
	rows := []struct {
		name     string
		sr       *SuiteResults
		llcKinds []isa.SyncKind
		latKind  isa.SyncKind
	}{
		{"T&T&S", naive, []isa.SyncKind{isa.SyncAcquire}, isa.SyncAcquire},
		{"CLH", scal, []isa.SyncKind{isa.SyncAcquire}, isa.SyncAcquire},
		{"SR barrier", naive, []isa.SyncKind{isa.SyncBarrier}, isa.SyncBarrier},
		{"TreeSR barrier", scal, []isa.SyncKind{isa.SyncBarrier}, isa.SyncBarrier},
		{"signal-wait", scal, []isa.SyncKind{isa.SyncWait}, isa.SyncWait},
	}
	for _, r := range rows {
		accRow, latRow := syncRow(r.sr, setups, r.llcKinds, r.latKind)
		llc.AddRow(r.name, metrics.NormalizeToMax(accRow)...)
		lat.AddRow(r.name, metrics.NormalizeToMax(latRow)...)
	}
	return llc, lat
}

// Fig1 is the motivation figure: Invalidation vs BackOff-{0,5,10,15} on
// CLH lock and TreeSR barrier spin-waiting (geomean over benchmarks,
// normalized to the highest value) — the back-off subset of the Figure 20
// scalable rows.
func Fig1(scal *SuiteResults) (llc, lat *metrics.Table) {
	n := 5 // Invalidation + the four back-offs
	if len(scal.Setups) < n {
		n = len(scal.Setups)
	}
	setups := scal.Setups[:n]
	cols := make([]string, len(setups))
	for i, s := range setups {
		cols[i] = s.Name
	}
	llc = metrics.NewTable("Figure 1 (LLC accesses, normalized to highest)", cols...)
	lat = metrics.NewTable("Figure 1 (latency, normalized to highest)", cols...)
	for _, r := range []struct {
		name string
		kind isa.SyncKind
	}{{"CLH", isa.SyncAcquire}, {"TreeSR barrier", isa.SyncBarrier}} {
		accRow, latRow := syncRow(scal, setups, []isa.SyncKind{r.kind}, r.kind)
		llc.AddRow(r.name, metrics.NormalizeToMax(accRow)...)
		lat.AddRow(r.name, metrics.NormalizeToMax(latRow)...)
	}
	return llc, lat
}

// suiteTables converts a suite sweep into execution-time and traffic
// tables normalized to Invalidation, with a geomean row (Figure 21).
func suiteTables(sr *SuiteResults, title string) (timeT, trafT *metrics.Table) {
	cols := make([]string, len(sr.Setups))
	for i, s := range sr.Setups {
		cols[i] = s.Name
	}
	timeT = metrics.NewTable(title+" execution time (normalized to Invalidation)", cols...)
	trafT = metrics.NewTable(title+" network traffic (normalized to Invalidation)", cols...)
	for _, name := range sr.Names {
		byS := sr.Results[name]
		baseT := byS["Invalidation"].Time()
		baseN := byS["Invalidation"].Traffic()
		tRow := make([]float64, len(sr.Setups))
		nRow := make([]float64, len(sr.Setups))
		for i, s := range sr.Setups {
			tRow[i] = byS[s.Name].Time() / baseT
			nRow[i] = byS[s.Name].Traffic() / baseN
		}
		timeT.AddRow(name, tRow...)
		trafT.AddRow(name, nRow...)
	}
	timeT.GeoMeanRow("geomean")
	trafT.GeoMeanRow("geomean")
	return timeT, trafT
}

// SuiteToFig21 converts an existing scalable-suite sweep into the
// Figure 21 tables.
func SuiteToFig21(sr *SuiteResults) (timeT, trafT *metrics.Table) {
	return suiteTables(sr, "Figure 21")
}

// Fig21 runs the full suite with scalable synchronization (CLH + TreeSR)
// and reports execution time and network traffic normalized to
// Invalidation per benchmark, plus geomeans.
func Fig21(o Options) (timeT, trafT *metrics.Table, sr *SuiteResults, err error) {
	sr, err = RunSuite(StandardSetups(), workload.StyleScalable, o)
	if err != nil {
		return nil, nil, nil, err
	}
	timeT, trafT = SuiteToFig21(sr)
	return timeT, trafT, sr, nil
}

// Fig22 converts a suite sweep into the energy breakdown of Figure 22:
// per setup, the geomean across benchmarks of L1 / LLC / network /
// callback-directory energy, normalized to Invalidation's total.
func Fig22(sr *SuiteResults) *metrics.Table {
	t := metrics.NewTable("Figure 22 energy (normalized to Invalidation total)",
		"L1", "LLC", "Network", "CBDir", "Total")
	for _, s := range sr.Setups {
		var l1, llc, net, cb, tot []float64
		for _, name := range sr.Names {
			base := sr.Results[name]["Invalidation"].Energy.Total()
			e := sr.Results[name][s.Name].Energy
			l1 = append(l1, e.L1/base)
			llc = append(llc, e.LLC/base)
			net = append(net, e.Network/base)
			cb = append(cb, e.CBDir/base)
			tot = append(tot, e.Total()/base)
		}
		t.AddRow(s.Name, metrics.GeoMean(l1), metrics.GeoMean(llc),
			metrics.GeoMean(net), metrics.GeoMean(cb), metrics.GeoMean(tot))
	}
	return t
}

// Fig23 fixes the barrier to TreeSR and compares T&T&S vs CLH locks:
// geomean execution time and traffic over all benchmarks, normalized to
// Invalidation-with-CLH.
func Fig23(o Options) (*metrics.Table, error) {
	o = o.fill()
	setups := StandardSetups()
	lockKinds := []workload.LockKind{workload.LockTTAS, workload.LockCLH}

	// base: Invalidation with CLH locks (one of the grid cells).
	type key struct {
		lock  workload.LockKind
		setup string
	}
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	type cell struct {
		p  workload.Profile
		lk workload.LockKind
		s  Setup
	}
	var cells []cell
	for _, p := range ps {
		for _, lk := range lockKinds {
			for _, s := range setups {
				cells = append(cells, cell{p, lk, s})
			}
		}
	}
	results := make([]Result, len(cells))
	err = o.forEach(len(cells), func(i int) error {
		c := cells[i]
		o.Logf("run fig23 %-14s lock=%-6s %-13s", c.p.Name, c.lk, c.s.Name)
		res, err := RunBenchmarkCustom(c.p, c.s, c.lk, workload.BarrierTree, o)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	times := map[key][]float64{}
	trafs := map[key][]float64{}
	cellsPerProfile := len(lockKinds) * len(setups)
	for pi := range ps {
		var base Result
		for i := pi * cellsPerProfile; i < (pi+1)*cellsPerProfile; i++ {
			if cells[i].lk == workload.LockCLH && cells[i].s.Name == setups[0].Name {
				base = results[i]
			}
		}
		for i := pi * cellsPerProfile; i < (pi+1)*cellsPerProfile; i++ {
			k := key{cells[i].lk, cells[i].s.Name}
			times[k] = append(times[k], results[i].Time()/base.Time())
			trafs[k] = append(trafs[k], results[i].Traffic()/base.Traffic())
		}
	}
	t := metrics.NewTable("Figure 23 (TreeSR barrier; geomean, normalized to Invalidation+CLH)",
		"time", "traffic")
	for _, lk := range lockKinds {
		for _, s := range setups {
			k := key{lk, s.Name}
			t.AddRow(fmt.Sprintf("%s + %s", s.Name, lk),
				metrics.GeoMean(times[k]), metrics.GeoMean(trafs[k]))
		}
	}
	return t, nil
}

// SensitivityEntries reproduces the Section 5.2 observation that growing
// the callback directory beyond 4 entries per bank does not change the
// results: geomean execution time over a lock-heavy benchmark subset,
// normalized to 4 entries.
func SensitivityEntries(o Options) (*metrics.Table, error) {
	o = o.fill()
	subset := []string{"radiosity", "fluidanimate", "raytrace", "barnes"}
	entries := []int{4, 16, 64, 256}
	setup, _ := SetupByName("CB-One")
	t := metrics.NewTable("Callback directory size sensitivity (time normalized to 4 entries/bank)",
		"4", "16", "64", "256")
	type cell struct {
		p       workload.Profile
		entries int
	}
	var cells []cell
	for _, name := range subset {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			cells = append(cells, cell{p, e})
		}
	}
	results := make([]Result, len(cells))
	err := o.forEach(len(cells), func(i int) error {
		c := cells[i]
		oe := o
		oe.CBEntries = c.entries
		o.Logf("run sensitivity %-14s entries=%d", c.p.Name, c.entries)
		res, err := RunBenchmark(c.p, setup, workload.StyleScalable, oe)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, name := range subset {
		row := make([]float64, len(entries))
		base := results[bi*len(entries)].Time()
		for i := range entries {
			row[i] = results[bi*len(entries)+i].Time() / base
		}
		t.AddRow(name, row...)
	}
	t.GeoMeanRow("geomean")
	return t, nil
}

// Headline extracts the paper's Section 5.4 summary claims from a
// scalable-suite sweep: CB-One vs Invalidation and vs BackOff-10, for
// execution time, traffic, and energy (geomean across benchmarks).
type Headline struct {
	TimeVsInvalidation    float64 // callbacks' time as a fraction of Invalidation (paper: 0.89)
	TimeVsBackoff10       float64 // paper: 0.95
	TrafficVsInvalidation float64 // paper: 0.73
	TrafficVsBackoff10    float64 // paper: 0.85
	EnergyVsInvalidation  float64 // paper: 0.60
	EnergyVsBackoff10     float64 // paper: 0.95
}

// Ratio returns the geomean over benchmarks of metric(num)/metric(den)
// for two setups in the sweep.
func (sr *SuiteResults) Ratio(num, den string, metric func(Result) float64) float64 {
	var rs []float64
	for _, name := range sr.Names {
		rs = append(rs, metric(sr.Results[name][num])/metric(sr.Results[name][den]))
	}
	return metrics.GeoMean(rs)
}

// NaiveSummary holds the Section 5.4.1 naive-synchronization claims:
// with T&T&S + SR barrier, callbacks beat Invalidation by ~40% in time
// and ~34% in traffic, and match BackOff-10's time with ~12% less
// traffic.
type NaiveSummary struct {
	TimeVsInvalidation    float64 // paper: ~0.60
	TrafficVsInvalidation float64 // paper: ~0.66
	TimeVsBackoff10       float64 // paper: ~1.00
	TrafficVsBackoff10    float64 // paper: ~0.88
}

// ComputeNaiveSummary derives the naive-synchronization summary from a
// naive-style suite sweep.
func ComputeNaiveSummary(naive *SuiteResults) NaiveSummary {
	timeM := func(r Result) float64 { return r.Time() }
	trafM := func(r Result) float64 { return r.Traffic() }
	return NaiveSummary{
		TimeVsInvalidation:    naive.Ratio("CB-One", "Invalidation", timeM),
		TrafficVsInvalidation: naive.Ratio("CB-One", "Invalidation", trafM),
		TimeVsBackoff10:       naive.Ratio("CB-One", "BackOff-10", timeM),
		TrafficVsBackoff10:    naive.Ratio("CB-One", "BackOff-10", trafM),
	}
}

func (n NaiveSummary) String() string {
	return fmt.Sprintf(`Naive synchronization (T&T&S + SR barrier, CB-One geomean):
  execution time vs Invalidation : %.3f   (paper: ~0.60)
  network traffic vs Invalidation: %.3f   (paper: ~0.66)
  execution time vs BackOff-10   : %.3f   (paper: ~1.00)
  network traffic vs BackOff-10  : %.3f   (paper: ~0.88)
`, n.TimeVsInvalidation, n.TrafficVsInvalidation, n.TimeVsBackoff10, n.TrafficVsBackoff10)
}

// ComputeHeadline derives the headline ratios from a suite sweep.
func ComputeHeadline(sr *SuiteResults) Headline {
	ratio := sr.Ratio
	timeM := func(r Result) float64 { return r.Time() }
	trafM := func(r Result) float64 { return r.Traffic() }
	enM := func(r Result) float64 { return r.Energy.Total() }
	return Headline{
		TimeVsInvalidation:    ratio("CB-One", "Invalidation", timeM),
		TimeVsBackoff10:       ratio("CB-One", "BackOff-10", timeM),
		TrafficVsInvalidation: ratio("CB-One", "Invalidation", trafM),
		TrafficVsBackoff10:    ratio("CB-One", "BackOff-10", trafM),
		EnergyVsInvalidation:  ratio("CB-One", "Invalidation", enM),
		EnergyVsBackoff10:     ratio("CB-One", "BackOff-10", enM),
	}
}

func (h Headline) String() string {
	return fmt.Sprintf(`Headline (CB-One, geomean over 19 benchmarks):
  execution time vs Invalidation : %.3f   (paper: ~0.89)
  execution time vs BackOff-10   : %.3f   (paper: ~0.95)
  network traffic vs Invalidation: %.3f   (paper: ~0.73)
  network traffic vs BackOff-10  : %.3f   (paper: ~0.85)
  energy vs Invalidation         : %.3f   (paper: ~0.60)
  energy vs BackOff-10           : %.3f   (paper: ~0.95)
`, h.TimeVsInvalidation, h.TimeVsBackoff10, h.TrafficVsInvalidation,
		h.TrafficVsBackoff10, h.EnergyVsInvalidation, h.EnergyVsBackoff10)
}
