package synclib

import (
	"repro/internal/isa"
	"repro/internal/memtypes"
)

// TASLock is the simple Test&Set spin lock of Figures 8 and 9.
type TASLock struct {
	L memtypes.Addr

	// ForceCB1Write makes the acquire RMW's store half a st_cb1
	// instead of the paper's st_cb0 optimization — the Figure 5 vs
	// Figure 6 ablation: a successful acquire then prematurely wakes a
	// waiter whose retry is doomed.
	ForceCB1Write bool
}

// NewTASLock allocates the lock variable (one line).
func NewTASLock(l *Layout) *TASLock {
	return &TASLock{L: l.SharedLine()}
}

// EmitInit implements Lock (no per-thread state).
func (t *TASLock) EmitInit(*isa.Builder, Flavor, int) {}

// EmitAcquire emits the T&S acquire loop.
func (t *TASLock) EmitAcquire(b *isa.Builder, f Flavor, tid int) {
	b.SyncBegin(isa.SyncAcquire)
	b.Imm(RegAddr, uint64(t.L))
	switch f {
	case FlavorMESI:
		// acq: t&s $r, L, 0, 1 ; bnez $r, acq
		acq := uniq(b, "tas_acq")
		b.Label(acq)
		b.TAS(RegTmp, RegAddr, 0, false, memtypes.CBAll)
		b.Bnez(RegTmp, acq)
	case FlavorBackoff:
		// Repeated atomics spin on the LLC: back off between attempts.
		acq := uniq(b, "tas_acq")
		cs := uniq(b, "tas_cs")
		b.BackoffReset()
		b.Label(acq)
		b.TAS(RegTmp, RegAddr, 0, false, memtypes.CBAll)
		b.Beqz(RegTmp, cs)
		b.BackoffWait()
		b.Jmp(acq)
		b.Label(cs)
		b.SelfInvl()
	case FlavorCBAll, FlavorCBOne:
		// Figure 9: a non-callback T&S guard, then a callback T&S
		// spin loop ({ld_cb}&{st_cb0/st_cbA}).
		st := tasStore(f)
		if t.ForceCB1Write && f == FlavorCBOne {
			st = memtypes.CBOne
		}
		cs := uniq(b, "tas_cs")
		spn := uniq(b, "tas_spn")
		b.TAS(RegTmp, RegAddr, 0, false, st)
		b.Beqz(RegTmp, cs)
		b.Label(spn)
		b.TAS(RegTmp, RegAddr, 0, true, st)
		b.Bnez(RegTmp, spn)
		b.Label(cs)
		b.SelfInvl()
	}
	b.SyncEnd(isa.SyncAcquire)
}

// EmitRelease emits the lock release.
func (t *TASLock) EmitRelease(b *isa.Builder, f Flavor, tid int) {
	b.SyncBegin(isa.SyncRelease)
	if f.SelfInvalidating() {
		b.SelfDown()
	}
	b.Imm(RegTmp, 0)
	emitReleaseStore(b, f, t.L, RegTmp)
	b.SyncEnd(isa.SyncRelease)
}

// TTASLock is the Test-and-Test&Set lock of Figures 10 and 11.
type TTASLock struct {
	L memtypes.Addr

	// ForceCB1Write replaces the st_cb0 store half of the acquire RMW
	// with st_cb1 (the Figure 5 vs Figure 6 ablation).
	ForceCB1Write bool
}

// NewTTASLock allocates the lock variable.
func NewTTASLock(l *Layout) *TTASLock {
	return &TTASLock{L: l.SharedLine()}
}

// EmitInit implements Lock (no per-thread state).
func (t *TTASLock) EmitInit(*isa.Builder, Flavor, int) {}

// EmitAcquire emits the T&T&S acquire: spin reading until free, then t&s.
func (t *TTASLock) EmitAcquire(b *isa.Builder, f Flavor, tid int) {
	b.SyncBegin(isa.SyncAcquire)
	switch f {
	case FlavorMESI:
		// acq: ld $r, L ; bnez $r, acq ; t&s ; bnez $r, acq
		acq := uniq(b, "ttas_acq")
		b.Label(acq)
		b.Imm(RegAddr, uint64(t.L))
		b.Ld(RegTmp, RegAddr, 0)
		b.Bnez(RegTmp, acq)
		b.TAS(RegTmp, RegAddr, 0, false, memtypes.CBAll)
		b.Bnez(RegTmp, acq)
	case FlavorBackoff:
		// Figure 10 (right) with exponential back-off on the racy
		// first Test.
		acq := uniq(b, "ttas_acq")
		tas := uniq(b, "ttas_tas")
		cs := uniq(b, "ttas_cs")
		b.Imm(RegAddr, uint64(t.L))
		b.BackoffReset()
		b.Label(acq)
		b.LdThrough(RegTmp, RegAddr, 0)
		b.Beqz(RegTmp, tas)
		b.BackoffWait()
		b.Jmp(acq)
		b.Label(tas)
		b.TAS(RegTmp, RegAddr, 0, false, memtypes.CBAll)
		b.Bnez(RegTmp, acq)
		b.Label(cs)
		b.SelfInvl()
	case FlavorCBAll, FlavorCBOne:
		// Figure 11: guard ld_through, ld_cb spin, non-callback T&S
		// ({ld}&{st_cbA} for callback-all, {ld}&{st_cb0} for
		// callback-one).
		st := tasStore(f)
		if t.ForceCB1Write && f == FlavorCBOne {
			st = memtypes.CBOne
		}
		spn := uniq(b, "ttas_spn")
		tas := uniq(b, "ttas_tas")
		cs := uniq(b, "ttas_cs")
		b.Imm(RegAddr, uint64(t.L))
		b.LdThrough(RegTmp, RegAddr, 0)
		b.Beqz(RegTmp, tas)
		b.Label(spn)
		b.LdCB(RegTmp, RegAddr, 0)
		b.Bnez(RegTmp, spn)
		b.Label(tas)
		b.TAS(RegTmp, RegAddr, 0, false, st)
		b.Bnez(RegTmp, spn)
		b.Label(cs)
		b.SelfInvl()
	}
	b.SyncEnd(isa.SyncAcquire)
}

// EmitRelease emits the lock release (st for MESI, st_through for
// backoff/callback-all, st_cb1 for callback-one).
func (t *TTASLock) EmitRelease(b *isa.Builder, f Flavor, tid int) {
	b.SyncBegin(isa.SyncRelease)
	if f.SelfInvalidating() {
		b.SelfDown()
	}
	b.Imm(RegTmp, 0)
	emitReleaseStore(b, f, t.L, RegTmp)
	b.SyncEnd(isa.SyncRelease)
}

// CLH node field offsets (each field is a word in the node's line).
const (
	clhSuccWait = 0 // succ_wait: successor must wait
	clhPrev     = 8 // prev: predecessor node, stashed by acquire
)

// CLHLock is the CLH queue lock of Figures 12 and 13: threads enqueue
// with an unconditional fetch&store and spin on their predecessor's
// succ_wait flag, so exactly one thread spins per variable.
type CLHLock struct {
	L memtypes.Addr // tail pointer

	// nodes[tid] is thread tid's initial queue node; ivars[tid] is the
	// thread-private word holding I (the current node pointer, which
	// migrates between threads as nodes are recycled).
	nodes []memtypes.Addr
	ivars []memtypes.Addr
}

// NewCLHLock allocates the lock for n threads: a tail pointer
// (initialized to a dummy released node), one node per thread, and the
// private I variables.
func NewCLHLock(l *Layout, n int) *CLHLock {
	c := &CLHLock{L: l.SharedLine()}
	// CLH threads spin on their predecessor's node through a pointer
	// obtained from the tail swap: the generated programs use indirect
	// addressing, which static verification must be told to admit.
	l.NoteIndirect()
	dummy := l.SharedLine() // succ_wait = 0: lock free
	l.Init[c.L] = uint64(dummy)
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, l.SharedLine())
		c.ivars = append(c.ivars, l.PrivateLine())
		l.Init[c.ivars[i]] = uint64(c.nodes[i])
	}
	return c
}

// EmitInit loads the thread's I variable (already initialized in the
// layout); nothing to emit.
func (c *CLHLock) EmitInit(b *isa.Builder, f Flavor, tid int) {}

// EmitAcquire emits the CLH acquire of Figures 12/13:
//
//	st   $i->succ_wait, 1
//	f&s  $p, L, $i
//	st   $i->prev, $p
//	spin until $p->succ_wait == 0
func (c *CLHLock) EmitAcquire(b *isa.Builder, f Flavor, tid int) {
	b.SyncBegin(isa.SyncAcquire)
	// Load I (thread-private).
	b.Imm(RegAddr, uint64(c.ivars[tid]))
	b.Ld(RegI, RegAddr, 0)
	// $i->succ_wait = 1 (racy store: the successor reads it racily).
	b.Imm(RegTmp2, 1)
	if f.SelfInvalidating() {
		b.StThrough(RegI, clhSuccWait, RegTmp2)
	} else {
		b.St(RegI, clhSuccWait, RegTmp2)
	}
	// f&s $p, L, $i.
	b.Imm(RegAddr, uint64(c.L))
	b.FetchStore(RegP, RegAddr, 0, RegI, memtypes.CBAll)
	// Stash prev for the release ("ld $p, $i->prev" in Figure 12).
	if f.SelfInvalidating() {
		b.StThrough(RegI, clhPrev, RegP)
	} else {
		b.St(RegI, clhPrev, RegP)
	}
	// Spin on the predecessor's succ_wait.
	emitSpinReg(b, f, RegP, clhSuccWait, RegTmp, exitWhenZero)
	if f.SelfInvalidating() {
		b.SelfInvl()
	}
	b.SyncEnd(isa.SyncAcquire)
}

// EmitRelease emits the CLH release: clear my node's succ_wait (waking
// the successor) and recycle the predecessor's node as mine.
func (c *CLHLock) EmitRelease(b *isa.Builder, f Flavor, tid int) {
	b.SyncBegin(isa.SyncRelease)
	if f.SelfInvalidating() {
		b.SelfDown()
	}
	// Reload I and prev.
	b.Imm(RegAddr, uint64(c.ivars[tid]))
	b.Ld(RegI, RegAddr, 0)
	b.Ld(RegTmp2, RegI, clhPrev)
	// st $i->succ_wait, 0 : the lock hand-off. Exactly one thread
	// (the successor) spins on this word, so callback-all and
	// callback-one behave identically (Section 3.4.3).
	b.Imm(RegTmp, 0)
	switch f {
	case FlavorMESI:
		b.St(RegI, clhSuccWait, RegTmp)
	case FlavorBackoff, FlavorCBAll:
		b.StThrough(RegI, clhSuccWait, RegTmp)
	case FlavorCBOne:
		b.StCB1(RegI, clhSuccWait, RegTmp)
	}
	// I = $p (recycle the predecessor's node).
	b.Imm(RegAddr, uint64(c.ivars[tid]))
	b.St(RegAddr, 0, RegTmp2)
	b.SyncEnd(isa.SyncRelease)
}
