// Package noc models the on-chip interconnect: a 2-dimensional mesh with
// deterministic X-Y routing, matching the GARNET configuration in Table 2
// of the paper (8x8 mesh, 16-byte flits, 6-cycle switch-to-switch time).
//
// Messages are forwarded hop by hop. Each directional link serializes the
// flits of a message (one flit per cycle), so back-to-back messages on hot
// links queue up — the contention that makes invalidation storms and LLC
// spinning expensive. Traffic is accounted in flit-hops, the same unit
// GARNET reports.
package noc

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cycles"
	"repro/internal/memtypes"
	"repro/internal/sim"
)

// Default timing parameters (Table 2).
const (
	DefaultSwitchLatency = 6 // cycles per switch-to-switch hop
	DefaultLocalLatency  = 1 // cycles for a message that stays on-tile
)

// Handler consumes messages delivered to a node.
type Handler interface {
	Deliver(msg *memtypes.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*memtypes.Message)

// Deliver calls f(msg).
func (f HandlerFunc) Deliver(msg *memtypes.Message) { f(msg) }

type direction int

const (
	dirEast direction = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// Stats accumulates network traffic counters.
type Stats struct {
	Messages uint64 // messages injected
	Flits    uint64 // flits injected (message sizes)
	FlitHops uint64 // flits x hops traversed: the traffic metric
	Hops     uint64 // message-hops traversed
	LinkWait uint64 // cycles messages spent waiting for busy links
}

// Mesh is a width x height 2D mesh network.
type Mesh struct {
	k             *sim.Kernel
	width, height int
	//cbvet:ephemeral configuration fixed at wiring time, re-applied by machine construction on restore
	switchLat uint64
	localLat  uint64
	// handlers holds the per-node delivery endpoints installed by
	// Attach during machine wiring.
	//cbvet:ephemeral wiring: delivery endpoints are re-attached at construction, not restored
	handlers []Handler
	// linkFree[node][dir] is the first cycle the outgoing link of node
	// in direction dir is idle.
	linkFree [][numDirs]uint64
	// linkBusy[node][dir] accumulates the cycles the link spent
	// serializing flits (for end-of-run utilization reporting).
	linkBusy [][numDirs]uint64
	stats    Stats

	// pool recycles Messages: senders allocate with NewMessage and the
	// final consumer returns them with Free, so steady-state traffic
	// performs no heap allocations.
	pool memtypes.MsgPool

	// observer, when set, is called on every injection and delivery
	// (tracing).
	observer func(cycle uint64, msg *memtypes.Message, what string)

	// cyc, when set, receives injection/delivery events keyed by the
	// message's core tag for the cycle-accounting aggregate
	// messages-in-flight counter (observational only).
	cyc cycles.Hook

	// ideal disables link contention and serialization: messages
	// arrive after pure distance latency (ablation mode).
	//cbvet:ephemeral ablation configuration fixed at wiring time, never changed mid-run
	ideal bool

	// chaos, when non-nil, injects per-message send delays and per-hop
	// jitter (fault injection; nil on the default path).
	//cbvet:ephemeral wiring pointer installed at construction; the engine's RNG state is snapshotted by the machine
	chaos *chaos.Engine
	// chaosFloor keeps chaos-perturbed times monotone where the real
	// network is FIFO: links (and per-node injection/local delivery)
	// must not reorder the messages they carry — the coherence
	// protocols assume point-to-point order, and jitter that swapped
	// two messages on one link would inject a fault no mesh can
	// produce. Delays still reorder traffic across different routes.
	// Indexed like linkFree, with two extra virtual directions per
	// node: injection into the network and local (src==dst) delivery.
	//cbvet:ephemeral snapshot-captured but deliberately excluded from digests so a chaos run does not digest-diverge from a fault-free twin before any fault lands (see digest.go)
	chaosFloor [][numDirs + 2]uint64

	// live counts messages handed out by NewMessage and not yet
	// returned with Free. It must be zero once the machine quiesces:
	// a positive residue is a leaked message, a negative one a double
	// free (message conservation, checked by machine.CheckInvariants).
	live int

	// dbg carries the double-free guard state; it is an empty struct
	// unless built with -tags cbsimdebug (see mesh_debug.go).
	dbg meshDebug
}

// New builds a width x height mesh on kernel k with default latencies.
func New(k *sim.Kernel, width, height int) *Mesh {
	if width <= 0 || height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	return &Mesh{
		k:         k,
		width:     width,
		height:    height,
		switchLat: DefaultSwitchLatency,
		localLat:  DefaultLocalLatency,
		handlers:  make([]Handler, width*height),
		linkFree:  make([][numDirs]uint64, width*height),
		linkBusy:  make([][numDirs]uint64, width*height),
	}
}

// SetSwitchLatency overrides the per-hop switch latency.
func (m *Mesh) SetSwitchLatency(cycles uint64) { m.switchLat = cycles }

// SetIdeal toggles contentionless mode: no link serialization or
// queueing, pure hops x switch latency. Traffic is still accounted in
// flit-hops. Used to check that conclusions are not artifacts of the
// contention model.
func (m *Mesh) SetIdeal(v bool) { m.ideal = v }

// SetChaos installs a fault-injection engine: messages may be held back
// at their source (opening reordering windows across routes) and every
// hop may pick up jitter, while each link stays FIFO. nil disables
// injection.
func (m *Mesh) SetChaos(e *chaos.Engine) {
	m.chaos = e
	if e != nil && m.chaosFloor == nil {
		m.chaosFloor = make([][numDirs + 2]uint64, m.width*m.height)
	}
}

// Virtual chaosFloor slots beyond the four link directions.
const (
	floorInject = int(numDirs)     // entry of a message into the network at its source
	floorLocal  = int(numDirs) + 1 // delivery of a src==dst message
)

// chaosClamp returns t raised to the floor of the given FIFO domain and
// records it, so successive events in that domain never reorder.
func (m *Mesh) chaosClamp(node memtypes.NodeID, slot int, t uint64) uint64 {
	if f := m.chaosFloor[node][slot]; t < f {
		t = f
	}
	m.chaosFloor[node][slot] = t
	return t
}

// LiveMessages reports how many pool messages are currently in flight
// (allocated by NewMessage, not yet Freed). Negative means a double free
// slipped past the cbsimdebug guard.
func (m *Mesh) LiveMessages() int { return m.live }

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.width * m.height }

// Attach registers the message handler for node n.
func (m *Mesh) Attach(n memtypes.NodeID, h Handler) {
	m.handlers[m.check(n)] = h
}

// Stats returns a copy of the accumulated traffic counters.
func (m *Mesh) Stats() Stats { return m.stats }

// SetObserver installs a hook called with "send" at injection and
// "deliver" at arrival of every message (nil disables tracing).
func (m *Mesh) SetObserver(fn func(cycle uint64, msg *memtypes.Message, what string)) {
	m.observer = fn
}

// SetCyclesObserver installs the cycle-accounting hook, fed
// EvNoCSend/EvNoCDeliver per message keyed by the message's core tag
// (nil disables).
func (m *Mesh) SetCyclesObserver(fn cycles.Hook) { m.cyc = fn }

// ResetStats zeroes the traffic counters (used to scope measurement to a
// parallel section).
func (m *Mesh) ResetStats() {
	m.stats = Stats{}
	for i := range m.linkBusy {
		m.linkBusy[i] = [numDirs]uint64{}
	}
}

// VisitLinkBusy calls fn once per physically present directional link
// with the cycles that link spent serializing flits — including links
// that stayed idle. Used for end-of-run utilization histograms (busy /
// run cycles per link).
func (m *Mesh) VisitLinkBusy(fn func(node memtypes.NodeID, busy uint64)) {
	for n := range m.linkBusy {
		x, y := m.coords(memtypes.NodeID(n))
		for d := direction(0); d < numDirs; d++ {
			switch d {
			case dirEast:
				if x == m.width-1 {
					continue
				}
			case dirWest:
				if x == 0 {
					continue
				}
			case dirSouth:
				if y == m.height-1 {
					continue
				}
			case dirNorth:
				if y == 0 {
					continue
				}
			}
			fn(memtypes.NodeID(n), m.linkBusy[n][d])
		}
	}
}

// NewMessage returns a zeroed message from the mesh's free list. Senders
// fill it and pass it to Send; the node that finally consumes it returns
// it with Free.
//
//cbsim:hotpath
func (m *Mesh) NewMessage() *memtypes.Message {
	m.live++
	return m.getMessage()
}

// Free recycles a message once its final consumer is done with it. The
// caller must not retain msg (or schedule work referencing it) afterwards:
// the pool may reissue it to any later sender. Builds with -tags
// cbsimdebug panic on a double Free and poison freed messages so stale
// readers fail loudly instead of silently corrupting protocol state.
func (m *Mesh) Free(msg *memtypes.Message) {
	m.live--
	m.putMessage(msg)
}

func (m *Mesh) check(n memtypes.NodeID) int {
	if int(n) < 0 || int(n) >= len(m.handlers) {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", n, len(m.handlers)))
	}
	return int(n)
}

func (m *Mesh) coords(n memtypes.NodeID) (x, y int) {
	return int(n) % m.width, int(n) / m.width
}

func (m *Mesh) node(x, y int) memtypes.NodeID {
	return memtypes.NodeID(y*m.width + x)
}

// HopCount returns the number of switch-to-switch hops between two nodes
// under X-Y routing (the Manhattan distance).
func (m *Mesh) HopCount(src, dst memtypes.NodeID) int {
	sx, sy := m.coords(src)
	dx, dy := m.coords(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// Send injects msg into the network. The destination handler's Deliver is
// invoked when the message arrives. Sends to the local node bypass the
// network with a fixed small latency and are not counted as traffic.
//
//cbsim:hotpath
func (m *Mesh) Send(msg *memtypes.Message) {
	m.check(msg.Src)
	m.check(msg.Dst)
	if m.observer != nil {
		m.observer(m.k.Now(), msg, "send")
	}
	if m.cyc != nil {
		m.cyc(int(msg.Core), cycles.EvNoCSend, m.k.Now(), 0, 0)
	}
	// Chaos holds the message at its source for delay extra cycles:
	// the mesh itself is the actor, so the held message re-enters the
	// network at its source node without any closure allocation. The
	// clamps keep each FIFO domain (injection, links, local delivery)
	// in order; see chaosFloor.
	var delay uint64
	if m.chaos != nil {
		delay = m.chaos.SendDelay()
	}
	if msg.Src == msg.Dst {
		if m.chaos != nil {
			t := m.chaosClamp(msg.Dst, floorLocal, m.k.Now()+m.localLat+delay)
			m.k.AtActor(t, m, msg, uint64(msg.Dst))
			return
		}
		m.k.ScheduleActor(m.localLat, m, msg, uint64(msg.Dst))
		return
	}
	m.stats.Messages++
	m.stats.Flits += uint64(msg.Flits())
	if m.ideal {
		hops := uint64(m.HopCount(msg.Src, msg.Dst))
		m.stats.FlitHops += uint64(msg.Flits()) * hops
		m.stats.Hops += hops
		if m.chaos != nil {
			t := m.chaosClamp(msg.Dst, floorLocal, m.k.Now()+hops*m.switchLat+delay)
			m.k.AtActor(t, m, msg, uint64(msg.Dst))
			return
		}
		m.k.ScheduleActor(hops*m.switchLat, m, msg, uint64(msg.Dst))
		return
	}
	if m.chaos != nil {
		if t := m.chaosClamp(msg.Src, floorInject, m.k.Now()+delay); t > m.k.Now() {
			m.k.AtActor(t, m, msg, uint64(msg.Src))
			return
		}
	}
	m.hop(msg, msg.Src)
}

// Act implements sim.Actor: it resumes a message at node arg, either
// forwarding it one more hop or delivering it. Scheduling the mesh itself
// as the actor (with the message as payload) makes per-hop routing free of
// closure allocations.
//
//cbsim:hotpath
func (m *Mesh) Act(data any, arg uint64) {
	m.hop(data.(*memtypes.Message), memtypes.NodeID(arg))
}

// hop routes msg one step from node at, scheduling the arrival at the next
// router (or the final delivery).
//
//cbsim:hotpath
func (m *Mesh) hop(msg *memtypes.Message, at memtypes.NodeID) {
	if at == msg.Dst {
		m.deliver(msg)
		return
	}
	x, y := m.coords(at)
	dx, dy := m.coords(msg.Dst)
	var dir direction
	var next memtypes.NodeID
	switch {
	// Deterministic X-Y routing: fully resolve X before moving in Y.
	case dx > x:
		dir, next = dirEast, m.node(x+1, y)
	case dx < x:
		dir, next = dirWest, m.node(x-1, y)
	case dy > y:
		dir, next = dirSouth, m.node(x, y+1)
	default:
		dir, next = dirNorth, m.node(x, y-1)
	}

	flits := uint64(msg.Flits())
	now := m.k.Now()
	free := m.linkFree[at][dir]
	depart := now
	if free > now {
		depart = free
		m.stats.LinkWait += free - now
	}
	// The link is busy while the message's flits serialize onto it.
	m.linkFree[at][dir] = depart + flits
	m.linkBusy[at][dir] += flits
	m.stats.FlitHops += flits
	m.stats.Hops++

	arrive := depart + m.switchLat
	if m.chaos != nil {
		arrive = m.chaosClamp(at, int(dir), arrive+m.chaos.HopJitter())
	}
	m.k.AtActor(arrive, m, msg, uint64(next))
}

//cbsim:hotpath
func (m *Mesh) deliver(msg *memtypes.Message) {
	if m.observer != nil {
		m.observer(m.k.Now(), msg, "deliver")
	}
	if m.cyc != nil {
		m.cyc(int(msg.Core), cycles.EvNoCDeliver, m.k.Now(), 0, 0)
	}
	h := m.handlers[msg.Dst]
	if h == nil {
		panic(fmt.Sprintf("noc: no handler attached to node %d for %s", msg.Dst, msg))
	}
	h.Deliver(msg)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
