// Command cbsimd is the simulation-as-a-service daemon: an HTTP/JSON
// front end over the deterministic sweep runner. Clients submit
// simulation jobs (single benchmark x setup cells or whole sweeps),
// watch per-cell progress as an NDJSON stream, and fetch the final
// statistics as JSON. Identical cells are served from a
// content-addressed LRU result cache instead of being re-simulated.
//
// Usage:
//
//	cbsimd [-addr :8347] [-workers N] [-queue N] [-cache-mb N]
//	       [-parallel N] [-job-timeout D] [-drain-timeout D] [-salt S]
//	       [-journal FILE] [-pprof]
//	       [-node-id NAME -peers NAME=URL,NAME=URL [-advertise URL] [-replicas N]]
//
// API:
//
//	POST   /v1/jobs             submit a job (JSON body; 429 when the queue is full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events stream progress (NDJSON)
//	GET    /v1/jobs/{id}/result final per-cell stats + energy (JSON)
//	GET    /v1/jobs/{id}/trace  Chrome trace JSON (jobs submitted with trace=true)
//	GET    /v1/jobs/{id}/replay windowed re-execution of a checkpointed job:
//	                            ?from=&to= select the cycle window, trace=true
//	                            returns its Chrome trace instead of stats
//	GET    /v1/jobs/{id}/bisect first divergence vs ?against=<setup> (exact
//	                            cycle, component, and first differing event)
//	GET    /metrics             Prometheus text: queue/worker/cache gauges + simulator histograms
//	GET    /healthz             liveness + draining flag
//	GET    /v1/cluster/status   cluster membership, peer health, breaker states (cluster mode)
//	GET    /debug/pprof/        Go profiling endpoints (only with -pprof)
//
// Jobs submitted with checkpoints=true (single-cell only) are recorded
// for time-travel debugging: the daemon keeps digest marks every
// checkpoint_interval cycles plus a bounded ring of live replay cursors,
// so any [from,to) window of the run can be re-executed — and traced —
// without re-simulating the prefix. Replayed windows are verified
// against the recording's digest marks as they run.
//
// On SIGTERM/SIGINT the daemon drains gracefully: running cells finish,
// queued jobs fail with a retryable status, and the process exits 0
// within the drain timeout.
//
// With -journal, accepted jobs are recorded in an append-only NDJSON
// journal before the client sees 202; on boot, jobs without a terminal
// record (queued or running when the previous process died) are
// re-enqueued under their original IDs — so the daemon survives crashes
// and kill -9 without losing accepted work.
//
// With -node-id and -peers, the daemon joins a static-membership cluster
// (internal/cluster): the result cache is consistent-hashed across
// members, cache fills are gossiped to each key's replicas, cells are
// forwarded to their owners or offloaded to idle peers, and the job
// journal is streamed to ring successors so a surviving replica re-owns
// a dead member's unfinished jobs. Every member must be started with the
// same member name set. Cluster connectivity is purely an accelerator:
// a partitioned member degrades to standalone behavior.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

// parsePeers parses the -peers grammar: comma-separated name=URL pairs.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, url, ok := strings.Cut(field, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("malformed peer %q (want name=http://host:port)", field)
		}
		peers[name] = strings.TrimSuffix(url, "/")
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs")
	queue := flag.Int("queue", 64, "queued-job bound (submissions beyond it get 429)")
	cacheMB := flag.Int64("cache-mb", 256, "result cache size in MiB")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max worker goroutines per job's cells")
	jobTimeout := flag.Duration("job-timeout", 30*time.Minute, "per-job deadline, queue wait included (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "graceful-drain budget on SIGTERM")
	salt := flag.String("salt", service.DefaultVersionSalt, "cache version salt (bump to invalidate cached results)")
	journal := flag.String("journal", "", "crash-consistent job journal file (empty = jobs do not survive restarts)")
	pprofOn := flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	nodeID := flag.String("node-id", "", "this member's name in a cbsimd cluster (requires -peers)")
	peersFlag := flag.String("peers", "", "static cluster membership: comma-separated name=URL pairs for every other member")
	advertise := flag.String("advertise", "", "URL peers should use to reach this member (reported in /v1/cluster/status)")
	replicas := flag.Int("replicas", 2, "copies of each cached result across the cluster, owner included")
	flag.Parse()

	logger := log.New(os.Stderr, "cbsimd: ", log.LstdFlags|log.Lmsgprefix)

	scfg := service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		CacheBytes:  *cacheMB << 20,
		Parallelism: *parallel,
		JobTimeout:  *jobTimeout,
		VersionSalt: *salt,
		JournalPath: *journal,
		Logf:        logger.Printf,
	}

	var node *cluster.Node
	if *peersFlag != "" || *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			logger.Fatalf("-peers: %v", err)
		}
		if *nodeID == "" || len(peers) == 0 {
			logger.Fatalf("cluster mode needs both -node-id and -peers")
		}
		reg := obs.NewRegistry()
		node, err = cluster.New(cluster.Config{
			Self:     *nodeID,
			SelfURL:  *advertise,
			Peers:    peers,
			Replicas: *replicas,
			Registry: reg,
			Logf:     logger.Printf,
		})
		if err != nil {
			logger.Fatalf("cluster: %v", err)
		}
		scfg.Registry = reg
		scfg.CellResolver = node.CellResolver()
		scfg.OnCacheFill = node.OnCacheFill
		scfg.OnJournal = node.OnJournal
		logger.Printf("cluster mode: node %s, %d peers, %d replicas", *nodeID, len(peers), *replicas)
	}

	svc, err := service.New(scfg)
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}

	handler := svc.Handler()
	if node != nil {
		node.SetBackend(svc)
		mux := http.NewServeMux()
		mux.Handle("/v1/cluster/", node.Handler())
		mux.Handle("/", svc.Handler())
		handler = mux
		node.Start()
		defer node.Stop()
	}
	if *pprofOn {
		// Mount the API alongside explicit pprof routes (avoiding the
		// DefaultServeMux so nothing else registered there leaks in).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// WriteTimeout stays 0: /v1/jobs/{id}/events streams for the
		// lifetime of a job.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Listen explicitly so ":0" resolves to a concrete port before the
	// "listening on" line — test harnesses (and humans) read the bound
	// address from the log.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d workers, queue %d, cache %d MiB)",
			ln.Addr(), *workers, *queue, *cacheMB)
		errCh <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (budget %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("drain timed out; in-flight jobs were canceled: %v", drainErr)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
