package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Spill support: a recording's mark stream and metadata persisted as a
// versioned JSON blob. The live replay cursors are paused machines and
// cannot leave the process; what spills is everything needed to check a
// later re-execution against this recording (or to anchor a bisection
// across process restarts): the digest marks, the end boundary, and the
// final digest. Loading a spilled recording back into a replayable form
// is just Record with the same source — the spill then serves as the
// cross-run evidence that the rebuilt recording is the same run.

// SpillVersion is bumped whenever the blob layout or the digest
// definition changes; a reader refuses other versions rather than
// comparing incomparable digests. Version 2: digests fold whole 64-bit
// words per round and component stats are folded field-by-field instead
// of through their formatted image.
const SpillVersion = 2

// Spill is the on-disk form of a recording's verification data.
type Spill struct {
	Version     int    `json:"version"`
	Label       string `json:"label"`
	Interval    uint64 `json:"interval"`
	Scope       string `json:"scope"`
	EndCycle    uint64 `json:"end_cycle"`
	FinalDigest uint64 `json:"final_digest"`
	Deferred    int    `json:"deferred_checkpoints"`
	Marks       []Mark `json:"marks"`
}

// spill writes the recording's blob into opts.SpillDir.
func (r *Recording) spill() error {
	blob := Spill{
		Version:     SpillVersion,
		Label:       r.src.Label,
		Interval:    r.opts.Interval,
		Scope:       r.opts.Scope.String(),
		EndCycle:    r.endCycle,
		FinalDigest: r.finalDigest,
		Deferred:    r.deferred,
		Marks:       r.marks,
	}
	data, err := json.MarshalIndent(&blob, "", "  ")
	if err != nil {
		return fmt.Errorf("replay: spill %s: %w", r.src.Label, err)
	}
	if err := os.MkdirAll(r.opts.SpillDir, 0o755); err != nil {
		return fmt.Errorf("replay: spill %s: %w", r.src.Label, err)
	}
	path := filepath.Join(r.opts.SpillDir, spillName(r.src.Label))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("replay: spill %s: %w", r.src.Label, err)
	}
	return nil
}

// spillName maps a source label to a filesystem-safe blob name.
func spillName(label string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, label)
	return s + ".replay.json"
}

// ReadSpill loads and version-checks a spilled recording blob.
func ReadSpill(path string) (*Spill, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay: read spill: %w", err)
	}
	var blob Spill
	if err := json.Unmarshal(data, &blob); err != nil {
		return nil, fmt.Errorf("replay: read spill %s: %w", path, err)
	}
	if blob.Version != SpillVersion {
		return nil, fmt.Errorf("replay: spill %s is version %d, this build reads %d", path, blob.Version, SpillVersion)
	}
	return &blob, nil
}
