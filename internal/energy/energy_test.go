package energy

import "testing"

func TestComputeBreakdown(t *testing.T) {
	p := Params{L1AccessPJ: 2, LLCTagPJ: 3, LLCDataPJ: 5, CBDirPJ: 1, FlitHopPJ: 7}
	c := Counts{
		L1Accesses:      10,
		LLCTagAccesses:  4,
		LLCDataAccesses: 6,
		CBDirAccesses:   8,
		FlitHops:        3,
	}
	b := Compute(c, p)
	if b.L1 != 20 {
		t.Errorf("L1 = %v, want 20", b.L1)
	}
	if b.LLC != 4*3+6*5 {
		t.Errorf("LLC = %v, want 42", b.LLC)
	}
	if b.Network != 21 {
		t.Errorf("Network = %v, want 21", b.Network)
	}
	if b.CBDir != 8 {
		t.Errorf("CBDir = %v, want 8", b.CBDir)
	}
	if b.Total() != 20+42+21+8 {
		t.Errorf("Total = %v, want 91", b.Total())
	}
}

func TestDefaultParamsOrdering(t *testing.T) {
	// The relative ordering Figure 22 depends on: a full LLC data
	// access costs more than an L1 access; a tag probe and a flit-hop
	// cost less; the 4-entry callback directory is nearly free.
	p := DefaultParams()
	if p.LLCDataPJ <= p.L1AccessPJ {
		t.Error("LLC data access should cost more than an L1 access")
	}
	if p.LLCTagPJ >= p.L1AccessPJ {
		t.Error("LLC tag probe should cost less than a full L1 access")
	}
	if p.CBDirPJ >= p.LLCTagPJ {
		t.Error("callback directory must be far cheaper than the LLC")
	}
	if p.FlitHopPJ <= 0 {
		t.Error("flit-hop energy must be positive")
	}
}

func TestZeroCounts(t *testing.T) {
	if got := Compute(Counts{}, DefaultParams()).Total(); got != 0 {
		t.Fatalf("empty counts should cost nothing, got %v", got)
	}
}

func TestCoreParams(t *testing.T) {
	active, idle := CoreParams()
	if active <= idle || idle <= 0 {
		t.Fatalf("core params %v/%v: active must dominate idle", active, idle)
	}
	p := DefaultParams()
	p.CoreActivePJ, p.CoreIdlePJ = active, idle
	b := Compute(Counts{CoreActiveCycles: 10, CoreIdleCycles: 10}, p)
	if b.Core != 10*active+10*idle {
		t.Fatalf("core energy = %v", b.Core)
	}
	if b.Total() != b.Core {
		t.Fatal("total should include core energy")
	}
}
