GO ?= go

.PHONY: all build test vet vet-cb race test-debug bench bench-snapshot bench-gate ci figures fuzz chaos-litmus replay-e2e cluster-e2e cycles

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet-cb runs the project's own analyzers (internal/analysis, driven by
# cmd/cbvet) through the go vet harness: determinism, msgfree, hotpath,
# obsreadonly, statecov (snapshot/digest coverage), waivers (directive
# hygiene). See README "Static analysis".
vet-cb:
	$(GO) build -o bin/cbvet ./cmd/cbvet
	$(GO) vet -vettool=$(CURDIR)/bin/cbvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# test-debug exercises the -tags cbsimdebug build: the noc double-free
# guard (poison + panic) and its tagged tests.
test-debug:
	$(GO) test -tags cbsimdebug ./internal/noc/

# bench runs every benchmark once: a smoke pass that exercises the figure
# regeneration paths and the alloc-counting benchmarks without the full
# measurement cost.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-snapshot writes a machine-readable perf record (hot-path ns/op
# and allocs/op, simulated-cycles-per-second) for CI to archive per PR.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -o BENCH_pr.json

# bench-gate diffs BENCH_pr.json against the committed BENCH_baseline.json:
# allocs/op exact, ns/op within a generous machine-speed tolerance, plus
# same-machine ratios (wheel >= 2x heap on spin-wave; warm sweep within
# 1.10x of cold). Regenerate the baseline with
# `go run ./cmd/benchsnap -o BENCH_baseline.json` when perf changes are
# intentional, and say so in the PR.
bench-gate: bench-snapshot
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -pr BENCH_pr.json

# fuzz runs the repository's fuzz targets for a bounded session each:
# the callback-directory differential fuzzer (real directory vs. an
# unbounded reference model) and the program-verifier soundness fuzzer
# (any strict-verified program must complete on a real machine within
# its declared budget). CI runs a short smoke; use FUZZTIME=5m locally
# for a real hunt.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzDirectory -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz FuzzVerifiedPrograms -fuzztime $(FUZZTIME) ./internal/isa/verify/

# chaos-litmus is the fault-injection gate: the chaos sweep (litmus
# programs and sync kernels under the fault matrix at fixed seeds must
# match their fault-free outcomes), the eviction-storm litmus tests, and
# the machine-level watchdog/invariant tests.
chaos-litmus:
	$(GO) test -count=1 -run 'TestRunChaos|Storm|TestWatchdog|TestCheckInvariants|TestChaosConfig' \
		./internal/experiments/ ./internal/litmus/ ./internal/machine/

# replay-e2e is the time-travel gate over the wire: build the real
# cbsimd binary, run a checkpointed job, replay windows of it over HTTP,
# and diff the replayed full-window Chrome trace against a directly
# traced run of the same cell (byte-identical, or the gate fails).
replay-e2e:
	$(GO) test -count=1 -run TestReplayE2E ./cmd/cbsimd/

# cluster-e2e is the robustness gate over real processes: three cbsimd
# daemons form a cluster over loopback, a standalone daemon defines the
# baseline bytes, one member is SIGKILLed mid-sweep, and the survivors'
# sweep tables must stay byte-identical to the baseline. The in-process
# fault-schedule invariance suite (drop/delay/dup/partition at fixed
# seeds) runs alongside it.
cluster-e2e:
	$(GO) test -count=1 -run TestClusterKillPeerE2E ./cmd/cbsimd/
	$(GO) test -count=1 ./internal/cluster/...

# ci is the full gate: vet (stock + project analyzers), build,
# race-enabled tests, the cbsimdebug tagged tests, a single-shot
# benchmark pass, the perf gate (which also writes the archived
# BENCH_pr.json snapshot), the replay end-to-end gate, and the cluster
# kill-a-peer end-to-end gate.
ci: vet vet-cb build race test-debug bench bench-gate replay-e2e cluster-e2e

# figures regenerates every table of the paper at full 64-core scale.
figures:
	$(GO) run ./cmd/experiments -fig all

# cycles produces the cycle-accounting artifacts for the reference
# Figure-21 cell (radiosity across all 7 standard setups): folded stacks
# text (flamegraph.pl / speedscope input) plus a gzipped pprof profile
# (`go tool pprof -top CYCLES_pr.pb.gz`). Per-core attribution of every
# simulated cycle; conservation is enforced by machine invariants.
cycles:
	$(GO) run ./cmd/cbsim -bench radiosity -cores 64 \
		-cyclefolded CYCLES_pr.folded.txt -cycleprofile CYCLES_pr.pb.gz
