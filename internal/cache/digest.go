package cache

import (
	"math/bits"

	"repro/internal/digest"
)

// Digest folds the array's mutable state — every valid line in physical
// (set, way) order plus the LRU clock and access counters — into h. The
// per-line protocol payload P is opaque to the array, so the caller
// supplies state to fold it (nil skips it, for payload-free arrays like
// the LLC data banks).
//
// The LRU tick and per-line lru stamps are included deliberately: they
// decide future victims, so two arrays that agree on digest agree on all
// future replacement behavior, not just current contents.
func (a *Array[P]) Digest(h *digest.Hash, state func(*digest.Hash, *P)) {
	h.U64(a.tick)
	h.U64(a.Accesses)
	h.U64(a.Hits)
	// Walk the occupancy masks rather than the line backing: the backing
	// of a mostly-empty LLC bank is megabytes of invalid slots, and this
	// scan runs on every replay digest mark.
	for s, m := range a.occ {
		for ; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			ln := &a.sets[s][w]
			h.Int(s)
			h.Int(w)
			h.U64(uint64(ln.Addr))
			h.U64(ln.lru)
			for _, word := range ln.Data {
				h.U64(word)
			}
			if state != nil {
				state(h, &ln.State)
			}
		}
	}
}
