// Package memtypes defines the address geometry, memory operation set, and
// inter-controller message representation shared by every protocol in the
// simulator.
//
// The operation set mirrors Table 1 of the paper: besides ordinary DRF
// loads and stores there are racy "through" operations that bypass the L1
// and meet at the LLC, the callback read (ld_cb), the write variants that
// service zero, one, or all callbacks (st_cb0, st_cb1, st_through/st_cbA),
// read-modify-writes composed from those parts, and the self-invalidation
// and self-downgrade fences.
package memtypes

import "fmt"

// Geometry of the memory system (Table 2 of the paper).
const (
	LineBytes    = 64 // cache line size
	WordBytes    = 8  // word size; callback tags are word-granular
	WordsPerLine = LineBytes / WordBytes
	PageBytes    = 4096
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line returns the address of the first byte of the cache line holding a.
func (a Addr) Line() Addr { return a &^ (LineBytes - 1) }

// Word returns the address of the first byte of the word holding a.
func (a Addr) Word() Addr { return a &^ (WordBytes - 1) }

// WordIndex returns the index of a's word within its cache line.
func (a Addr) WordIndex() int { return int(a%LineBytes) / WordBytes }

// Offset returns the byte offset of a within its cache line.
func (a Addr) Offset() int { return int(a % LineBytes) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// NodeID identifies a tile (core + L1 + LLC bank + router) in the CMP.
type NodeID int

// Line is the data payload of one cache line.
type Line [WordsPerLine]uint64

// OpKind enumerates the memory operations a core can issue.
type OpKind uint8

const (
	// OpRead and OpWrite are ordinary data-race-free accesses. They are
	// cached in the L1 under every protocol.
	OpRead OpKind = iota
	OpWrite

	// OpReadThrough (ld_through) bypasses the L1 and reads the current
	// LLC value. Under a callback protocol it also consumes the F/E bit
	// if one is available but never blocks: it is the non-blocking
	// callback used as the spin-loop guard (Section 3.3).
	OpReadThrough

	// OpReadCB (ld_cb) bypasses the L1 and blocks in the callback
	// directory until its F/E bit is full.
	OpReadCB

	// OpWriteThrough (st_through / st_cbA) writes the LLC immediately
	// and services all waiting callbacks.
	OpWriteThrough

	// OpWriteCB1 (st_cb1) writes the LLC and services exactly one
	// waiting callback, switching the entry to callback-one mode.
	OpWriteCB1

	// OpWriteCB0 (st_cb0) writes the LLC and services no callbacks,
	// also in callback-one mode. Used by the write half of successful
	// lock-acquire RMWs (Section 2.5).
	OpWriteCB0

	// OpRMW is an atomic read-modify-write performed at the LLC. Its
	// load half is OpReadThrough or OpReadCB and its store half is one
	// of the three write variants (see RMW fields on Request).
	OpRMW

	// OpFenceSelfInvl self-invalidates the shared contents of the L1
	// (acquire fence). It first self-downgrades transient dirty data so
	// it also enforces W->self-invl (footnote 7 of the paper).
	OpFenceSelfInvl

	// OpFenceSelfDown self-downgrades (writes through) the dirty
	// contents of the L1 (release fence).
	OpFenceSelfDown
)

var opKindNames = [...]string{
	OpRead:          "ld",
	OpWrite:         "st",
	OpReadThrough:   "ld_through",
	OpReadCB:        "ld_cb",
	OpWriteThrough:  "st_through",
	OpWriteCB1:      "st_cb1",
	OpWriteCB0:      "st_cb0",
	OpRMW:           "rmw",
	OpFenceSelfInvl: "self_invl",
	OpFenceSelfDown: "self_down",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// IsRacy reports whether the operation is one of the conflicting
// (synchronization) accesses that bypass the L1.
func (k OpKind) IsRacy() bool {
	switch k {
	case OpReadThrough, OpReadCB, OpWriteThrough, OpWriteCB1, OpWriteCB0, OpRMW:
		return true
	}
	return false
}

// IsFence reports whether the operation is a self-invalidation or
// self-downgrade fence.
func (k OpKind) IsFence() bool {
	return k == OpFenceSelfInvl || k == OpFenceSelfDown
}

// RMWOp enumerates the atomic primitives used by the synchronization
// algorithms of Section 3.4.
type RMWOp uint8

const (
	// RMWTestAndSet writes New if the current value equals Expect and
	// returns the old value (t&s: Expect=0, New=1).
	RMWTestAndSet RMWOp = iota
	// RMWSwap unconditionally writes New and returns the old value
	// (fetch&store, used by the CLH lock).
	RMWSwap
	// RMWFetchAdd adds Delta and returns the old value (fetch&inc,
	// fetch&dec).
	RMWFetchAdd
	// RMWTestAndDec decrements if the current value is non-zero and
	// returns the old value (t&d, used by signal/wait).
	RMWTestAndDec
	// RMWCompareAndSwap writes New if the current value equals Expect
	// and returns the old value.
	RMWCompareAndSwap
)

var rmwOpNames = [...]string{
	RMWTestAndSet:     "t&s",
	RMWSwap:           "f&s",
	RMWFetchAdd:       "f&a",
	RMWTestAndDec:     "t&d",
	RMWCompareAndSwap: "cas",
}

func (o RMWOp) String() string {
	if int(o) < len(rmwOpNames) {
		return rmwOpNames[o]
	}
	return fmt.Sprintf("RMWOp(%d)", uint8(o))
}

// Apply computes the RMW result for op on old with the given operands.
// It returns the new value and whether the write half takes place.
func (o RMWOp) Apply(old, expect, arg uint64) (newVal uint64, writes bool) {
	switch o {
	case RMWTestAndSet:
		if old == expect {
			return arg, true
		}
		return old, false
	case RMWSwap:
		return arg, true
	case RMWFetchAdd:
		return old + arg, true
	case RMWTestAndDec:
		if old != 0 {
			return old - 1, true
		}
		return old, false
	case RMWCompareAndSwap:
		if old == expect {
			return arg, true
		}
		return old, false
	}
	panic(fmt.Sprintf("memtypes: unknown RMWOp %d", o))
}

// CBWrite classifies the store half of a racy write or RMW by how many
// callbacks it services.
type CBWrite uint8

const (
	// CBAll services every waiting callback (st_through / st_cbA).
	CBAll CBWrite = iota
	// CBOne services exactly one waiting callback (st_cb1).
	CBOne
	// CBZero services no callbacks (st_cb0).
	CBZero
)

func (w CBWrite) String() string {
	switch w {
	case CBAll:
		return "cbA"
	case CBOne:
		return "cb1"
	case CBZero:
		return "cb0"
	}
	return fmt.Sprintf("CBWrite(%d)", uint8(w))
}

// StoreKind returns the OpKind of a standalone store with these callback
// semantics.
func (w CBWrite) StoreKind() OpKind {
	switch w {
	case CBAll:
		return OpWriteThrough
	case CBOne:
		return OpWriteCB1
	case CBZero:
		return OpWriteCB0
	}
	panic(fmt.Sprintf("memtypes: unknown CBWrite %d", w))
}

// Request is a memory operation issued by a core to its L1 port.
type Request struct {
	Kind OpKind
	Addr Addr
	Core NodeID

	// Value is the store data for writes, or unused for reads.
	Value uint64

	// RMW describes the atomic for OpRMW requests.
	RMW     RMWOp
	RMWLdCB bool    // load half is ld_cb rather than ld_through
	RMWSt   CBWrite // store half semantics
	Expect  uint64  // expected value for t&s / cas
	Arg     uint64  // new value / addend

	// Private marks the address as thread-private data, which the
	// self-invalidation protocols exclude from coherence (never
	// self-invalidated or downgraded eagerly).
	Private bool

	// Sync marks a request issued inside a synchronization phase
	// (between SyncBegin/SyncEnd markers), so LLC accesses can be
	// attributed to synchronization as in Figures 1 and 20.
	Sync bool

	// SyncKind is the innermost synchronization phase kind (an
	// isa.SyncKind value; 0 when not synchronizing), for per-algorithm
	// LLC-access attribution.
	SyncKind uint8
}

// NumSyncKinds mirrors isa.NumSyncKinds for counter array sizing without
// an import cycle.
const NumSyncKinds = 8

// Response carries the completion of a Request back to the core.
type Response struct {
	// Value is the loaded value (for reads and RMWs, the old value).
	Value uint64
	// Hit reports whether the access hit in the L1 (DRF accesses only).
	Hit bool
	// Stale reports that a callback was answered by a directory
	// eviction rather than a write, so Value is simply the current
	// value (Section 2.3.1).
	Stale bool
}

// Port is the interface cores use to access the memory system. Exactly one
// outstanding request per core is permitted (in-order blocking cores).
type Port interface {
	// Access starts req and invokes done exactly once on completion.
	Access(req *Request, done func(Response))
}
