package experiments

import (
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// ExtensionIdleEnergy quantifies the power-saving opportunity the paper
// points out in Section 2.1 ("a core can easily go into a power-saving
// mode while waiting... left for future work"): cores blocked on a
// callback, sleeping in back-off, or halted on a monitor are
// clock-gate-able; cores spinning on an L1 copy are not. It reports, per
// setup, the gate-able fraction of core-cycles and the total energy
// including a per-cycle core model, normalized to Invalidation.
func ExtensionIdleEnergy(o Options) (*metrics.Table, error) {
	o = o.fill()
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"radiosity", "ocean", "fluidanimate", "raytrace"}
	}
	ps, err := o.profiles()
	if err != nil {
		return nil, err
	}
	setups := StandardSetups()
	params := energy.DefaultParams()
	params.CoreActivePJ, params.CoreIdlePJ = energy.CoreParams()

	t := metrics.NewTable("Idle-while-blocked extension (geomean over benchmarks)",
		"idle fraction", "core+mem energy")
	results := make([]Result, len(ps)*len(setups))
	err = o.forEach(len(results), func(i int) error {
		p, s := ps[i/len(setups)], setups[i%len(setups)]
		o.Logf("run idle-ext %-14s %-13s", p.Name, s.Name)
		res, err := RunBenchmark(p, s, workload.StyleScalable, o)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	perSetup := map[string][][]float64{}
	for pi := range ps {
		var baseEnergy float64
		for i, s := range setups {
			st := results[pi*len(setups)+i].Stats
			e := energy.Compute(energy.Counts{
				L1Accesses:       st.L1Accesses,
				LLCTagAccesses:   st.LLCAccesses - st.LLCDataAccesses,
				LLCDataAccesses:  st.LLCDataAccesses,
				CBDirAccesses:    st.CBDirAccesses,
				FlitHops:         st.Net.FlitHops,
				CoreActiveCycles: st.CoreActiveCycles,
				CoreIdleCycles:   st.CoreIdleCycles,
			}, params)
			if i == 0 {
				baseEnergy = e.Total()
			}
			idleFrac := float64(st.CoreIdleCycles) /
				float64(st.CoreIdleCycles+st.CoreActiveCycles)
			perSetup[s.Name] = append(perSetup[s.Name], []float64{
				idleFrac, e.Total() / baseEnergy,
			})
		}
	}
	for _, s := range setups {
		rows := perSetup[s.Name]
		idle := make([]float64, len(rows))
		en := make([]float64, len(rows))
		for i, r := range rows {
			idle[i], en[i] = r[0], r[1]
		}
		t.AddRow(s.Name, metrics.GeoMean(idle), metrics.GeoMean(en))
	}
	return t, nil
}
