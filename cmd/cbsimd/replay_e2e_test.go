package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/service"
)

// TestReplayE2E is the time-travel acceptance test over the wire: build
// the real daemon, run a checkpointed job, replay windows of it over
// HTTP, and diff the full-window replayed trace against the trace of an
// ordinary traced run of the identical cell — they must be
// byte-identical, because a replay is a verified re-execution of the
// same deterministic run.
func TestReplayE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a real daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cbsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cbsimd: %v\n%s", err, out)
	}
	proc, url := startDaemon(t, bin, filepath.Join(dir, "journal.ndjson"), "2")
	defer func() {
		proc.Process.Kill()
		proc.Wait()
	}()

	ck := submitJob(t, url, service.JobRequest{
		Benchmark: "fft", Setup: "CB-One", Cores: 4,
		Checkpoints: true, CheckpointInterval: 2048,
	})
	waitForState(t, url, ck, service.StateDone, 60*time.Second)

	body, code := httpGet(t, url+"/v1/jobs/"+ck+"/replay")
	if code != http.StatusOK {
		t.Fatalf("replay = %d: %s", code, body)
	}
	var full service.ReplayResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.End == 0 || full.Stats.Cycles == 0 {
		t.Fatalf("replay reports an empty run: %+v", full)
	}

	// A sub-window, traced twice: byte-identical (the second request
	// anchors on the cursor the first one parked).
	win := "/v1/jobs/" + ck + "/replay?from=" + u64(full.End/4) + "&to=" + u64(full.End/2) + "&trace=true"
	w1, code := httpGet(t, url+win)
	if code != http.StatusOK {
		t.Fatalf("window trace = %d: %s", code, w1)
	}
	w2, _ := httpGet(t, url+win)
	if !bytes.Equal(w1, w2) {
		t.Fatalf("replayed window trace differs across requests: %d vs %d bytes", len(w1), len(w2))
	}

	// The decisive diff: full-window replayed trace vs the trace of an
	// ordinary traced run of the same cell, submitted as its own job.
	tr := submitJob(t, url, service.JobRequest{
		Benchmark: "fft", Setup: "CB-One", Cores: 4, Trace: true,
	})
	waitForState(t, url, tr, service.StateDone, 60*time.Second)
	direct, code := httpGet(t, url+"/v1/jobs/"+tr+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace = %d: %s", code, direct)
	}
	replayed, code := httpGet(t, url+"/v1/jobs/"+ck+"/replay?from=0&to="+u64(full.End)+"&trace=true")
	if code != http.StatusOK {
		t.Fatalf("full-window trace = %d: %s", code, replayed)
	}
	if !bytes.Equal(direct, replayed) {
		t.Fatalf("replayed full-window trace differs from the directly traced run: %d vs %d bytes", len(direct), len(replayed))
	}

	// And the divergence probe: the checkpointed cell against another
	// setup must name a concrete first divergent cycle.
	bi, code := httpGet(t, url+"/v1/jobs/"+ck+"/bisect?against=Invalidation")
	if code != http.StatusOK {
		t.Fatalf("bisect = %d: %s", code, bi)
	}
	var rep service.BisectResponse
	if err := json.Unmarshal(bi, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Diverged || len(rep.Components) == 0 {
		t.Fatalf("CB-One vs Invalidation did not produce a located divergence:\n%s", rep.Report)
	}
	if rep.Scope != "arch" {
		t.Fatalf("cross-protocol bisect scope = %q, want arch", rep.Scope)
	}
}

func httpGet(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

func u64(v uint64) string { return strconv.FormatUint(v, 10) }
