package machine

import "fmt"

// This file is the machine half of the replay subsystem's execution
// primitive: advancing a machine to an exact cycle boundary and pausing
// there without perturbing the event sequence. A run chopped into
// boundary segments fires the identical events — and accumulates
// byte-identical Stats — as one uninterrupted Run; the boundaries are
// merely the places where checkpoints, state digests, and trace sinks
// may be attached or compared. Pinned by TestRunToCycleByteIdentity.

// RunToCycle advances the simulation to the exact boundary of cycle
// target: every event scheduled before target fires, none at or after
// it does. It returns done=true when all loaded cores finished —
// stopping at the same point Run would, possibly before the boundary.
// A drained event queue with unfinished cores is a deadlock and fails
// with a diagnosis, exactly like an exhausted Run limit.
//
// Unlike Run, the clock is not bumped to the boundary on pause: Now()
// reports the last fired event's cycle. Repeated calls with increasing
// targets chunk a run into windows; Stats may be read at any pause.
func (m *Machine) RunToCycle(target uint64) (done bool, err error) {
	if m.loaded == 0 {
		return false, fmt.Errorf("machine: no programs loaded")
	}
	finished := func() bool { return m.finished == m.loaded }
	if !m.K.RunToBoundary(target, finished) {
		return true, nil // cond stopped it: every core is done
	}
	if finished() {
		return true, nil
	}
	if m.K.Pending() == 0 {
		return false, fmt.Errorf("machine: %d/%d cores finished and event queue drained at cycle %d (deadlock)\n%s",
			m.finished, m.loaded, m.K.Now(), m.Diagnose())
	}
	return false, nil
}

// NextEventCycle reports the cycle of the earliest pending event, or
// false when the queue is empty. The bisection fine scan uses it to jump
// both machines to their common next boundary instead of probing every
// empty cycle.
func (m *Machine) NextEventCycle() (uint64, bool) {
	return m.K.NextEventTime()
}

// Finished reports whether every loaded core has executed its Done op.
func (m *Machine) Finished() bool {
	return m.loaded > 0 && m.finished == m.loaded
}

// DetachTrace removes every attached trace sink and uninstalls the
// component observers, returning the machine to its untraced (and
// observer-overhead-free) state. The replay re-executor pairs it with
// AttachTrace: sinks are attached at a window's start boundary and
// detached at its end, so a parked replay cursor never drags a stale
// sink into a later window.
func (m *Machine) DetachTrace() {
	m.detachObservers()
}
