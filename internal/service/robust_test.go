package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestCancelQueuedJobSkipsWorker pins the DELETE-before-start race: a
// job canceled while still queued must be finished as canceled
// immediately, the worker that later dequeues it must skip it (never
// flipping it to running), and the worker must stay available for
// subsequent jobs. Run under -race in CI.
func TestCancelQueuedJobSkipsWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Parallelism: 1})

	// Occupy the single worker with a long sweep.
	blocker, code := submit(t, ts, JobRequest{Setups: []string{"CB-One"}, Cores: 16})
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker = %d", code)
	}
	waitState(t, ts, blocker.ID, StateRunning)

	// Queue a second job and cancel it before any worker can touch it.
	queued, code := submit(t, ts, JobRequest{Benchmark: "fft", Setup: "CB-One", Cores: 4})
	if code != http.StatusAccepted {
		t.Fatalf("submit queued = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The cancellation is synchronous for queued jobs: no waiting for a
	// worker.
	st := getStatus(t, ts, queued.ID)
	if st.State != StateCanceled || !strings.Contains(st.Error, "before start") {
		t.Fatalf("canceled queued job = %+v", st)
	}

	// Free the worker and push another job through: the worker must have
	// skipped the canceled job, not run it or died on it.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	after, code := submit(t, ts, JobRequest{Benchmark: "fft", Setup: "CB-One", Cores: 4})
	if code != http.StatusAccepted {
		t.Fatalf("submit after cancel = %d", code)
	}
	waitState(t, ts, after.ID, StateDone)

	// The canceled job never ran: still canceled, zero cells done.
	st = getStatus(t, ts, queued.ID)
	if st.State != StateCanceled || st.CellsDone != 0 {
		t.Fatalf("skipped job mutated: %+v", st)
	}
}

// TestPanicIsolatedToJob feeds the worker a job whose cell panics inside
// the simulator (non-square core count smuggled past validation) and
// expects that job to fail with the panic message while the daemon keeps
// serving.
func TestPanicIsolatedToJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Parallelism: 1})

	// Build the poisoned job directly (the HTTP API validates cores).
	cells := []CellSpec{{Benchmark: "fft", Setup: "CB-One", Cores: 7, Style: "scalable", Entries: 4, Limit: 1_000_000}}
	j, err := func() (*job, error) {
		req := JobRequest{Benchmark: "fft", Setup: "CB-One", Cores: 4}
		return s.makeJob("job-poison", req)
	}()
	if err != nil {
		t.Fatal(err)
	}
	j.cells = cells
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.jobsCh <- j

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, j.id)
		if terminalState(st.State) {
			if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
				t.Fatalf("poisoned job = %+v, want failed with panic message", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poisoned job never finished: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The daemon survived: the same worker completes the next job.
	after, code := submit(t, ts, JobRequest{Benchmark: "fft", Setup: "CB-One", Cores: 4})
	if code != http.StatusAccepted {
		t.Fatalf("submit after panic = %d", code)
	}
	waitState(t, ts, after.ID, StateDone)
}

// Backpressure responses carry jittered Retry-After hints so rejected
// clients don't retry in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	seen := make(map[string]bool)
	for i := 0; i < 8; i++ {
		v := s.retryAfter()
		n, err := time.ParseDuration(v + "s")
		if err != nil || n < time.Second || n > 4*time.Second {
			t.Fatalf("retryAfter() = %q, want 1..4 seconds", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("retryAfter never varied: %v", seen)
	}
}

// TestRetryableRejectionHeaders pins the shared backpressure contract:
// both retryable rejections — 429 when the queue is full and 503 while
// draining — go through the same helper and therefore both carry a
// jittered Retry-After header (1-4 seconds) and a retryable error body.
func TestRetryableRejectionHeaders(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Parallelism: 1})

	postJob := func(req JobRequest) *http.Response {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	checkRetryable := func(resp *http.Response, wantCode int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantCode)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := time.ParseDuration(ra + "s")
		if err != nil || secs < time.Second || secs > 4*time.Second {
			t.Fatalf("%d rejection Retry-After = %q, want 1..4 seconds", wantCode, ra)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatal(err)
		}
		if !apiErr.Retryable || apiErr.Error == "" {
			t.Fatalf("%d rejection body = %+v, want retryable with message", wantCode, apiErr)
		}
	}

	// Occupy the only worker and the one queue slot.
	blocker, code := submit(t, ts, JobRequest{Setups: []string{"CB-One"}, Cores: 16})
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker = %d", code)
	}
	waitState(t, ts, blocker.ID, StateRunning)
	queued, code := submit(t, ts, JobRequest{Benchmark: "fft", Setup: "CB-One", Cores: 4})
	if code != http.StatusAccepted {
		t.Fatalf("submit queued = %d", code)
	}

	// Queue full: 429 with the shared retryable shape.
	checkRetryable(postJob(JobRequest{Benchmark: "lu", Setup: "CB-One", Cores: 4}), http.StatusTooManyRequests)

	// Empty the server and drain it: 503 with the same shape.
	for _, id := range []string{blocker.ID, queued.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	checkRetryable(postJob(JobRequest{Benchmark: "fft", Setup: "CB-One", Cores: 4}), http.StatusServiceUnavailable)
}
