package vips

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// This file implements deterministic snapshot/restore for machine
// warm-starts (machine.Snapshot). A tile may only be snapshotted at
// quiescence with no transient protocol state: no pending L1 operation or
// unacknowledged write-through, no locked LLC lines or deferred
// operations, nothing parked in the callback directory, and no engaged
// VIPS-M blocking bits — all of which hold closures or in-flight
// messages. For the states snapshots are taken from — a freshly built
// machine, or a machine whose programs ran to completion and quiesced —
// all of these are empty by construction.

// L1State is a deep copy of a quiescent VIPS L1's mutable state.
type L1State struct {
	Arr   cache.ArrayState[l1Line]
	Stats L1Stats
}

// State captures the L1's mutable state, failing if an operation or
// write-through is outstanding.
func (l *L1) State() (L1State, error) {
	if l.pending != nil {
		return L1State{}, fmt.Errorf("vips: L1 %d has a pending operation", l.id)
	}
	if l.wtOutstanding != 0 {
		return L1State{}, fmt.Errorf("vips: L1 %d has %d unacknowledged write-throughs", l.id, l.wtOutstanding)
	}
	return L1State{Arr: l.arr.State(), Stats: l.stats}, nil
}

// SetState overwrites the L1's mutable state, dropping any pending
// operation.
func (l *L1) SetState(st L1State) {
	l.arr.SetState(st.Arr)
	l.pending = nil
	l.wtOutstanding = 0
	l.stats = st.Stats
}

// BankState is a deep copy of a quiescent Bank's mutable state.
type BankState struct {
	Data  mem.BankState
	CBDir *core.DirectoryState // nil in back-off mode
	Stats BankCtrlStats
}

// State captures the bank's mutable state, failing on any transient
// protocol state.
func (b *Bank) State() (BankState, error) {
	if len(b.busy) != 0 || len(b.deferq) != 0 {
		return BankState{}, fmt.Errorf("vips: bank %d has locked lines", b.id)
	}
	if len(b.parked) != 0 {
		return BankState{}, fmt.Errorf("vips: bank %d has parked callback reads", b.id)
	}
	//cbvet:unordered existence check only, order-independent
	for a, st := range b.queueLocks {
		if st.blocked || len(st.queue) > 0 {
			return BankState{}, fmt.Errorf("vips: bank %d has an engaged queue lock at %s", b.id, a)
		}
	}
	st := BankState{Data: b.data.State(), Stats: b.stats}
	if b.cbdir != nil {
		ds := b.cbdir.State()
		st.CBDir = &ds
	}
	return st, nil
}

// SetState overwrites the bank's mutable state, dropping any transient
// protocol state (inert queue-lock entries are semantically equal to
// absent ones, so clearing the map is exact).
func (b *Bank) SetState(st BankState) {
	b.data.SetState(st.Data)
	if b.cbdir != nil && st.CBDir != nil {
		b.cbdir.SetState(*st.CBDir)
	}
	clear(b.busy)
	clear(b.deferq)
	clear(b.parked)
	clear(b.queueLocks)
	b.stats = st.Stats
}

// TileState bundles the two controllers' states.
type TileState struct {
	L1   L1State
	Bank BankState
}

// State captures the tile's mutable state.
func (t *Tile) State() (TileState, error) {
	l1, err := t.L1.State()
	if err != nil {
		return TileState{}, err
	}
	bank, err := t.Bank.State()
	if err != nil {
		return TileState{}, err
	}
	return TileState{L1: l1, Bank: bank}, nil
}

// SetState overwrites the tile's mutable state.
func (t *Tile) SetState(st TileState) {
	t.L1.SetState(st.L1)
	t.Bank.SetState(st.Bank)
}
