package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/memtypes"
	"repro/internal/synclib"
	"repro/internal/workload"
)

// Micro is a contended synchronization microbenchmark: the per-algorithm
// workloads behind Figure 20 (and the motivation Figure 1).
type Micro struct {
	Name string
	// Kinds are the sync phases whose LLC accesses the figure charges
	// to this construct (the SR barrier includes its embedded T&T&S
	// lock's acquire/release accesses).
	Kinds []isa.SyncKind
	// LatencyKind is the phase whose mean latency the figure reports
	// (the outermost marker; it already includes nested phases).
	LatencyKind isa.SyncKind
	// build generates the per-thread programs.
	build func(cores int, f synclib.Flavor) *workload.Generated
}

// lockMicro builds N threads x iters acquisitions of one shared lock with
// a short critical section and jittered think time.
func lockMicro(name string, mk func(*synclib.Layout, int) synclib.Lock) Micro {
	return Micro{
		Name:        name,
		Kinds:       []isa.SyncKind{isa.SyncAcquire},
		LatencyKind: isa.SyncAcquire,
		build: func(cores int, f synclib.Flavor) *workload.Generated {
			const iters = 8
			lay := synclib.NewLayout()
			lock := mk(lay, cores)
			counter := lay.SharedLine()
			// The counter is the workload's observable datum; the
			// lock's own words (CLH queue nodes especially) may end
			// with order-dependent residue.
			g := &workload.Generated{Layout: lay, Flavor: f,
				Observe: []memtypes.Addr{counter}}
			for tid := 0; tid < cores; tid++ {
				rng := rand.New(rand.NewSource(int64(tid) + 42))
				b := isa.NewBuilder()
				lock.EmitInit(b, f, tid)
				b.Imm(isa.R1, iters)
				b.Label("loop")
				b.Compute(uint64(2000 + rng.Intn(2000)))
				lock.EmitAcquire(b, f, tid)
				b.Imm(isa.R2, uint64(counter))
				b.Ld(isa.R3, isa.R2, 0)
				b.Addi(isa.R3, isa.R3, 1)
				b.St(isa.R2, 0, isa.R3)
				b.Compute(100)
				lock.EmitRelease(b, f, tid)
				b.Addi(isa.R1, isa.R1, ^uint64(0))
				b.Bnez(isa.R1, "loop")
				b.Done()
				g.Programs = append(g.Programs, b.MustBuild())
			}
			return g
		},
	}
}

// barrierMicro builds E episodes of the given barrier with jittered
// compute between episodes.
func barrierMicro(name string, mk func(*synclib.Layout, int) synclib.Barrier) Micro {
	return Micro{
		Name:        name,
		Kinds:       []isa.SyncKind{isa.SyncBarrier, isa.SyncAcquire, isa.SyncRelease},
		LatencyKind: isa.SyncBarrier,
		build: func(cores int, f synclib.Flavor) *workload.Generated {
			const episodes = 8
			lay := synclib.NewLayout()
			bar := mk(lay, cores)
			// Pure synchronization, no data: the outcome is the
			// barrier-episode counts in Stats.
			g := &workload.Generated{Layout: lay, Flavor: f,
				Observe: []memtypes.Addr{}}
			for tid := 0; tid < cores; tid++ {
				rng := rand.New(rand.NewSource(int64(tid) + 7))
				b := isa.NewBuilder()
				bar.EmitInit(b, f, tid)
				b.Imm(isa.R1, episodes)
				b.Label("loop")
				b.Compute(uint64(1000 + rng.Intn(3000)))
				bar.EmitWait(b, f, tid)
				b.Addi(isa.R1, isa.R1, ^uint64(0))
				b.Bnez(isa.R1, "loop")
				b.Done()
				g.Programs = append(g.Programs, b.MustBuild())
			}
			return g
		},
	}
}

// signalWaitMicro pairs producers (even cores) with consumers (odd
// cores); the measured phase is the consumer's wait.
func signalWaitMicro() Micro {
	return Micro{
		Name:        "signal-wait",
		Kinds:       []isa.SyncKind{isa.SyncWait},
		LatencyKind: isa.SyncWait,
		build: func(cores int, f synclib.Flavor) *workload.Generated {
			const iters = 10
			lay := synclib.NewLayout()
			var chans []*synclib.SignalWait
			for i := 0; i < cores/2; i++ {
				chans = append(chans, synclib.NewSignalWait(lay))
			}
			// Pure synchronization, no data: the outcome is the
			// wait-episode counts in Stats.
			g := &workload.Generated{Layout: lay, Flavor: f,
				Observe: []memtypes.Addr{}}
			for tid := 0; tid < cores; tid++ {
				rng := rand.New(rand.NewSource(int64(tid) + 99))
				ch := chans[tid/2]
				b := isa.NewBuilder()
				b.Imm(isa.R1, iters)
				b.Label("loop")
				if tid%2 == 0 {
					b.Compute(uint64(500 + rng.Intn(1000)))
					ch.EmitSignal(b, f)
				} else {
					ch.EmitWait(b, f)
					b.Compute(50)
				}
				b.Addi(isa.R1, isa.R1, ^uint64(0))
				b.Bnez(isa.R1, "loop")
				b.Done()
				g.Programs = append(g.Programs, b.MustBuild())
			}
			return g
		},
	}
}

// Micros returns the five synchronization constructs of Figure 20.
func Micros() []Micro {
	return []Micro{
		lockMicro("T&T&S", func(l *synclib.Layout, n int) synclib.Lock { return synclib.NewTTASLock(l) }),
		lockMicro("CLH", func(l *synclib.Layout, n int) synclib.Lock { return synclib.NewCLHLock(l, n) }),
		barrierMicro("SR barrier", func(l *synclib.Layout, n int) synclib.Barrier {
			return synclib.NewSRBarrier(l, n, synclib.NewTTASLock(l))
		}),
		barrierMicro("TreeSR barrier", func(l *synclib.Layout, n int) synclib.Barrier {
			return synclib.NewTreeBarrier(l, n)
		}),
		signalWaitMicro(),
	}
}

// MicroResult is one micro x setup measurement.
type MicroResult struct {
	// LLCAccesses counts sync-attributed LLC accesses of the measured
	// kind.
	LLCAccesses float64
	// Latency is the mean latency (cycles) of one episode of the
	// measured kind.
	Latency float64
	Stats   machine.Stats
}

// RunMicro runs one microbenchmark under one setup.
func RunMicro(mc Micro, s Setup, o Options) (MicroResult, error) {
	o = o.fill()
	g := mc.build(o.Cores, s.Flavor())
	res, err := runGenerated(g, s, o)
	if err != nil {
		return MicroResult{}, fmt.Errorf("micro %s: %w", mc.Name, err)
	}
	st := res.Stats
	var llc uint64
	for _, k := range mc.Kinds {
		llc += st.LLCSyncByKind[k]
	}
	return MicroResult{
		LLCAccesses: float64(llc),
		Latency:     st.SyncLatency(mc.LatencyKind),
		Stats:       st,
	}, nil
}

// RunMicroGrid sweeps every microbenchmark across the setups, cells
// running across Options.Parallelism workers. grid[m][s] is microbenchmark
// mcs[m] under setups[s].
func RunMicroGrid(mcs []Micro, setups []Setup, o Options) (grid [][]MicroResult, err error) {
	o = o.fill()
	flat := make([]MicroResult, len(mcs)*len(setups))
	err = o.forEach(len(flat), func(i int) error {
		mc, s := mcs[i/len(setups)], setups[i%len(setups)]
		o.Logf("run micro %-14s %-13s", mc.Name, s.Name)
		res, err := RunMicro(mc, s, o)
		if err != nil {
			return err
		}
		flat[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	grid = make([][]MicroResult, len(mcs))
	for m := range mcs {
		grid[m] = flat[m*len(setups) : (m+1)*len(setups)]
	}
	return grid, nil
}
