package memtypes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	cases := []struct {
		a       Addr
		line    Addr
		word    Addr
		wordIdx int
		offset  int
	}{
		{0, 0, 0, 0, 0},
		{7, 0, 0, 0, 7},
		{8, 0, 8, 1, 8},
		{63, 0, 56, 7, 63},
		{64, 64, 64, 0, 0},
		{0x1234, 0x1200, 0x1230, 6, 0x34},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("%s.Line() = %s, want %s", c.a, got, c.line)
		}
		if got := c.a.Word(); got != c.word {
			t.Errorf("%s.Word() = %s, want %s", c.a, got, c.word)
		}
		if got := c.a.WordIndex(); got != c.wordIdx {
			t.Errorf("%s.WordIndex() = %d, want %d", c.a, got, c.wordIdx)
		}
		if got := c.a.Offset(); got != c.offset {
			t.Errorf("%s.Offset() = %d, want %d", c.a, got, c.offset)
		}
	}
}

func TestAddrProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		// The line contains the word, the word contains the address.
		if a.Word() < a.Line() || a.Word() > a.Line()+LineBytes-WordBytes {
			return false
		}
		if a < a.Word() || a >= a.Word()+WordBytes {
			return false
		}
		// WordIndex is consistent with Word.
		return a.Line()+Addr(a.WordIndex()*WordBytes) == a.Word()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestRMWApply(t *testing.T) {
	cases := []struct {
		op          RMWOp
		old, expect uint64
		arg         uint64
		wantNew     uint64
		wantWrites  bool
	}{
		{RMWTestAndSet, 0, 0, 1, 1, true},         // free lock taken
		{RMWTestAndSet, 1, 0, 1, 1, false},        // held lock: no write
		{RMWSwap, 42, 0, 7, 7, true},              // unconditional
		{RMWFetchAdd, 10, 0, 5, 15, true},         // fetch&add
		{RMWFetchAdd, 10, 0, ^uint64(0), 9, true}, // fetch&dec via -1
		{RMWTestAndDec, 3, 0, 0, 2, true},         // positive: decrement
		{RMWTestAndDec, 0, 0, 0, 0, false},        // zero: no write
		{RMWCompareAndSwap, 5, 5, 9, 9, true},
		{RMWCompareAndSwap, 5, 6, 9, 5, false},
	}
	for _, c := range cases {
		gotNew, gotWrites := c.op.Apply(c.old, c.expect, c.arg)
		if gotNew != c.wantNew || gotWrites != c.wantWrites {
			t.Errorf("%s.Apply(%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.op, c.old, c.expect, c.arg, gotNew, gotWrites, c.wantNew, c.wantWrites)
		}
	}
}

func TestOpKindClassification(t *testing.T) {
	racy := []OpKind{OpReadThrough, OpReadCB, OpWriteThrough, OpWriteCB1, OpWriteCB0, OpRMW}
	for _, k := range racy {
		if !k.IsRacy() {
			t.Errorf("%s should be racy", k)
		}
		if k.IsFence() {
			t.Errorf("%s should not be a fence", k)
		}
	}
	drf := []OpKind{OpRead, OpWrite}
	for _, k := range drf {
		if k.IsRacy() || k.IsFence() {
			t.Errorf("%s should be plain DRF", k)
		}
	}
	for _, k := range []OpKind{OpFenceSelfInvl, OpFenceSelfDown} {
		if !k.IsFence() || k.IsRacy() {
			t.Errorf("%s should be a fence only", k)
		}
	}
}

func TestCBWriteStoreKind(t *testing.T) {
	if CBAll.StoreKind() != OpWriteThrough {
		t.Error("CBAll should map to st_through")
	}
	if CBOne.StoreKind() != OpWriteCB1 {
		t.Error("CBOne should map to st_cb1")
	}
	if CBZero.StoreKind() != OpWriteCB0 {
		t.Error("CBZero should map to st_cb0")
	}
}

func TestMsgClassFlits(t *testing.T) {
	if ClassControl.Flits() != 1 {
		t.Errorf("control = %d flits, want 1", ClassControl.Flits())
	}
	if ClassWordData.Flits() != 2 {
		t.Errorf("word = %d flits, want 2", ClassWordData.Flits())
	}
	if ClassLineData.Flits() != 5 {
		t.Errorf("line = %d flits, want 5 (1 header + 64B/16B)", ClassLineData.Flits())
	}
}

func TestStringers(t *testing.T) {
	// Smoke-test the String methods so fmt output is stable.
	for k := OpRead; k <= OpFenceSelfDown; k++ {
		if k.String() == "" {
			t.Errorf("OpKind(%d) has empty name", k)
		}
	}
	for o := RMWTestAndSet; o <= RMWCompareAndSwap; o++ {
		if o.String() == "" {
			t.Errorf("RMWOp(%d) has empty name", o)
		}
	}
	m := &Message{Src: 1, Dst: 2, Kind: KindMESIBase, Class: ClassLineData, Addr: 0x40}
	if m.String() == "" || m.Flits() != 5 {
		t.Error("message stringer/flits broken")
	}
}

func TestCBWriteString(t *testing.T) {
	if CBAll.String() != "cbA" || CBOne.String() != "cb1" || CBZero.String() != "cb0" {
		t.Fatal("CBWrite names wrong")
	}
	if CBWrite(9).String() == "" {
		t.Fatal("unknown CBWrite should still print")
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if OpKind(200).String() == "" || RMWOp(200).String() == "" || MsgClass(9).String() == "" {
		t.Fatal("unknown enums should print placeholders")
	}
}

func TestWordDataFlitsScaleWithWords(t *testing.T) {
	m := &Message{Class: ClassWordData}
	if m.Flits() != 2 {
		t.Fatalf("0-word message = %d flits, want 2", m.Flits())
	}
	m.Words = 4 // 4 x 8B = 2 payload flits + header
	if m.Flits() != 3 {
		t.Fatalf("4-word message = %d flits, want 3", m.Flits())
	}
	m.Words = 8
	if m.Flits() != 5 {
		t.Fatalf("8-word message = %d flits, want 5 (full line)", m.Flits())
	}
}

func TestMsgClassStrings(t *testing.T) {
	for _, c := range []MsgClass{ClassControl, ClassWordData, ClassLineData} {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
}
