package litmus

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/memtypes"
)

const (
	x = memtypes.Addr(0x100000)
	y = memtypes.Addr(0x100040)
)

// TestMessagePassingRacy is the MP litmus test with racy operations:
//
//	T0: st_through x,1 ; st_through y,1
//	T1: spin until y==1 ; r = ld_through x
//
// r must be 1 under every protocol: through-ops are SC among themselves
// (Section 3.2), and the blocking core cannot reorder them.
func TestMessagePassingRacy(t *testing.T) {
	for _, proto := range Protocols() {
		writer := isa.NewBuilder().
			Imm(isa.R1, uint64(x)).
			Imm(isa.R2, 1).
			StThrough(isa.R1, 0, isa.R2).
			Imm(isa.R1, uint64(y)).
			StThrough(isa.R1, 0, isa.R2).
			Done().
			MustBuild()
		reader := isa.NewBuilder().
			Imm(isa.R1, uint64(y)).
			Label("spin").
			LdThrough(isa.R2, isa.R1, 0).
			Beqz(isa.R2, "spin").
			Imm(isa.R1, uint64(x)).
			LdThrough(isa.R3, isa.R1, 0).
			Done().
			MustBuild()
		p := Program{
			Name:        "MP-racy",
			Threads:     []*isa.Program{writer, reader},
			ObserveRegs: []RegObs{{Thread: 1, Reg: isa.R3}},
		}
		out, err := Run(p, proto, 4)
		if err != nil {
			t.Fatal(err)
		}
		if out.Regs[0] != 1 {
			t.Fatalf("%v: MP read x=%d after observing y=1, want 1 (forbidden outcome)", proto, out.Regs[0])
		}
	}
}

// TestMessagePassingDRF is MP with DRF data published through a
// release/acquire flag: the canonical SC-for-DRF pattern of Section 3.1.
func TestMessagePassingDRF(t *testing.T) {
	for _, proto := range Protocols() {
		data := memtypes.Addr(0x200000)
		flag := memtypes.Addr(0x200040)
		writer := isa.NewBuilder().
			Imm(isa.R1, uint64(data)).
			Imm(isa.R2, 42).
			St(isa.R1, 0, isa.R2). // DRF write
			SelfDown().            // release
			Imm(isa.R1, uint64(flag)).
			Imm(isa.R2, 1).
			StThrough(isa.R1, 0, isa.R2).
			Done().
			MustBuild()
		reader := isa.NewBuilder().
			Imm(isa.R1, uint64(flag)).
			Label("spin").
			LdThrough(isa.R2, isa.R1, 0).
			Beqz(isa.R2, "spin").
			SelfInvl(). // acquire
			Imm(isa.R1, uint64(data)).
			Ld(isa.R3, isa.R1, 0). // DRF read
			Done().
			MustBuild()
		p := Program{
			Name:        "MP-drf",
			Threads:     []*isa.Program{writer, reader},
			ObserveRegs: []RegObs{{Thread: 1, Reg: isa.R3}},
		}
		out, err := Run(p, proto, 4)
		if err != nil {
			t.Fatal(err)
		}
		if out.Regs[0] != 42 {
			t.Fatalf("%v: acquire read %d, want 42 (release visibility violated)", proto, out.Regs[0])
		}
	}
}

// TestStoreBufferingAtomics is the SB litmus test with atomics: both
// threads swap 1 into their own flag and read the other's. Because
// atomics are SC among themselves, at least one thread must see the
// other's write: r0 == 0 && r1 == 0 is forbidden.
func TestStoreBufferingAtomics(t *testing.T) {
	for _, proto := range Protocols() {
		mk := func(mine, other memtypes.Addr) *isa.Program {
			b := isa.NewBuilder()
			b.Imm(isa.R1, uint64(mine))
			b.Imm(isa.R2, 1)
			b.RMW(isa.R3, isa.R1, 0, isa.RMWSpec{Op: memtypes.RMWSwap, St: memtypes.CBAll, ArgImm: 1})
			b.Imm(isa.R1, uint64(other))
			b.LdThrough(isa.R4, isa.R1, 0)
			b.Done()
			return b.MustBuild()
		}
		p := Program{
			Name:    "SB-atomics",
			Threads: []*isa.Program{mk(x, y), mk(y, x)},
			ObserveRegs: []RegObs{
				{Thread: 0, Reg: isa.R4},
				{Thread: 1, Reg: isa.R4},
			},
		}
		out, err := Run(p, proto, 4)
		if err != nil {
			t.Fatal(err)
		}
		if out.Regs[0] == 0 && out.Regs[1] == 0 {
			t.Fatalf("%v: SB forbidden outcome 0/0 observed", proto)
		}
	}
}

// TestCoherenceSingleLocation checks that racy writes to one word are
// totally ordered: after two st_throughs from different cores complete,
// every protocol agrees on a final value that is one of the two.
func TestCoherenceSingleLocation(t *testing.T) {
	for _, proto := range Protocols() {
		mk := func(v uint64, delay uint64) *isa.Program {
			return isa.NewBuilder().
				Compute(delay).
				Imm(isa.R1, uint64(x)).
				Imm(isa.R2, v).
				StThrough(isa.R1, 0, isa.R2).
				Done().
				MustBuild()
		}
		p := Program{
			Name:    "coherence",
			Threads: []*isa.Program{mk(7, 13), mk(9, 13)},
			Observe: []memtypes.Addr{x},
		}
		out, err := Run(p, proto, 4)
		if err != nil {
			t.Fatal(err)
		}
		if out.Mem[0] != 7 && out.Mem[0] != 9 {
			t.Fatalf("%v: final value %d is neither write", proto, out.Mem[0])
		}
	}
}

// TestAtomicityFetchAdd: N concurrent fetch&adds must all take effect.
func TestAtomicityFetchAdd(t *testing.T) {
	for _, proto := range Protocols() {
		const n = 9
		var threads []*isa.Program
		for i := 0; i < n; i++ {
			threads = append(threads, isa.NewBuilder().
				Compute(uint64(i*7)).
				Imm(isa.R1, uint64(x)).
				FetchAdd(isa.R2, isa.R1, 0, 1, memtypes.CBAll).
				Done().
				MustBuild())
		}
		p := Program{Name: "f&a", Threads: threads, Observe: []memtypes.Addr{x}}
		out, err := Run(p, proto, n)
		if err != nil {
			t.Fatal(err)
		}
		if out.Mem[0] != n {
			t.Fatalf("%v: counter = %d, want %d (lost update)", proto, out.Mem[0], n)
		}
	}
}

// TestRandomProgramsAgree runs randomly generated DRF programs under all
// three protocols: the final lock-protected counters must match the
// analytic expectation everywhere.
func TestRandomProgramsAgree(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		if err := RandCheck(seed, 8); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCallbackVariantsAgreeWithBackoff: the callback protocol with CB-All
// flavour must produce the same DRF results as CB-One and backoff.
func TestCallbackVariantsAgreeWithBackoff(t *testing.T) {
	p := randProgram(99, 8)
	var ref *Outcome
	for _, f := range []struct {
		proto machine.Protocol
		name  string
	}{
		{machine.ProtocolCallback, "cb"},
		{machine.ProtocolBackoff, "backoff"},
	} {
		p.Threads = p.build(flavorFor(f.proto))
		out, err := Run(p, f.proto, 8)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			o := out
			ref = &o
			continue
		}
		for i := range out.Mem {
			if out.Mem[i] != ref.Mem[i] {
				t.Fatalf("%s disagrees: %v vs %v", f.name, out, *ref)
			}
		}
	}
}
