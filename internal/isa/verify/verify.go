// Package verify statically checks isa.Programs before they reach a
// simulated machine. It builds the control-flow graph and runs an
// abstract interpretation proving four properties:
//
//   - structure: jump targets in range, register indices valid, RMW
//     fields consistent, sync-marker kinds defined, no fallthrough off
//     the end of the program, a reachable done.
//   - memory: every ld/st/RMW effective address provably lands inside
//     the program's declared data Footprint. Direct addresses are
//     tracked through an interval domain; pointer-chasing accesses
//     (base register loaded from memory, as in the CLH lock's queue
//     nodes) are only admitted when the footprint explicitly allows
//     indirection, and even then the static offset must stay within one
//     cache line of the loaded pointer.
//   - sync: acquire/release pairing balances on every path, sync_end
//     matches the innermost sync_begin, done never fires inside a sync
//     phase, and blocking operations (ld_cb, backoff_wait, RMWs with a
//     callback load half) only appear inside a synchronization region.
//     Across a thread set, statically determinate barrier-episode
//     counts must agree (barrier participation consistency).
//   - bound: every control-flow cycle is either a sync-guarded spin
//     loop (it blocks on memory inside a sync region, so progress is
//     the protocol's liveness obligation) or a counted loop with a
//     provable trip bound. From the trip bounds the verifier derives a
//     worst-case cycle Budget so services can enforce per-tenant
//     limits.
//
// Two modes: ModeTrusted admits sync-guarded spin loops (the synclib
// algorithms guarantee their progress) and is what the built-in
// workloads verify under; ModeStrict is for untrusted single programs —
// it additionally rejects spin loops and blocking callback reads, so an
// accepted program terminates within Budget cycles no matter what other
// cores do.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/memtypes"
)

// Mode selects how much liveness the verifier takes on trust.
type Mode uint8

const (
	// ModeTrusted admits sync-guarded spin loops and blocking callback
	// reads: bounded-ness of spinning is the protocol's obligation.
	ModeTrusted Mode = iota
	// ModeStrict proves termination unconditionally: no spin loops, no
	// blocking callback reads, every loop carries a trip bound.
	ModeStrict
)

func (m Mode) String() string {
	if m == ModeStrict {
		return "strict"
	}
	return "trusted"
}

// Cost-model constants for the worst-case cycle Budget.
const (
	// MemLatencyBound over-approximates one memory operation's latency
	// on an uncontended machine (L1 miss + mesh round trip + DRAM).
	MemLatencyBound = 512
	// BackoffWaitBound over-approximates one backoff_wait stall at the
	// largest configurable interval.
	BackoffWaitBound = 1 << 18
	// MaxComputeCycles caps a single compute's immediate in strict mode
	// so one instruction cannot out-wait a liveness watchdog.
	MaxComputeCycles = 1 << 20
	// MaxTrips caps a provable loop trip count.
	MaxTrips = 1 << 20
	// budgetCap saturates budget arithmetic.
	budgetCap = uint64(1) << 62
)

// maxSyncDepth bounds the abstract sync-marker stack (the deepest
// builtin nesting is a lock acquire inside a barrier: depth 2).
const maxSyncDepth = 8

// Options configures one verification.
type Options struct {
	// Footprint declares the data the program may touch. nil skips the
	// memory-safety check (structure, sync, and bound still run).
	Footprint *Footprint
	// Mode selects trusted or strict liveness treatment.
	Mode Mode
	// MaxInstrs rejects absurdly long programs (0 = default 1<<20).
	MaxInstrs int
}

// Diagnostic is one finding, anchored to an instruction.
type Diagnostic struct {
	Thread int    // thread index in a set, -1 for single programs
	PC     int    // instruction index, -1 for whole-program findings
	Instr  string // disassembly of the offending instruction
	Check  string // "structure", "memory", "sync", or "bound"
	Msg    string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Thread >= 0 {
		fmt.Fprintf(&b, "thread %d: ", d.Thread)
	}
	if d.PC >= 0 {
		fmt.Fprintf(&b, "pc %d (%s) ", d.PC, d.Instr)
	}
	fmt.Fprintf(&b, "[%s]: %s", d.Check, d.Msg)
	return b.String()
}

// Report is the outcome of verifying one program.
type Report struct {
	Diags []Diagnostic

	// Budget is the worst-case productive cycle count: every reachable
	// instruction costed at its latency bound, multiplied through
	// proven loop trip counts. In trusted mode spin-loop iterations are
	// excluded (each spin site is counted once); in strict mode the
	// budget bounds the whole execution.
	Budget uint64
	// SpinSites counts sync-guarded spin loops (trusted mode only).
	SpinSites int
	// Barriers is the number of barrier episodes completed on every
	// path to done, or -1 when the count is path- or loop-dependent.
	Barriers int
	// MemOps counts reachable memory operations.
	MemOps int
}

// OK reports whether verification passed.
func (r *Report) OK() bool { return len(r.Diags) == 0 }

// Err returns nil when verification passed, or an error carrying every
// diagnostic.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Diags))
	for i, d := range r.Diags {
		msgs[i] = d.String()
	}
	return fmt.Errorf("verify: %d finding(s):\n  %s", len(r.Diags), strings.Join(msgs, "\n  "))
}

// CycleLimit returns a machine cycle limit generously above Budget, for
// harnesses that run an accepted program and treat non-completion as a
// verifier soundness bug.
func (r *Report) CycleLimit() uint64 {
	return satAdd(r.Budget, 1<<16)
}

// SetReport is the outcome of verifying a multi-threaded program set.
type SetReport struct {
	Threads []*Report
	// Cross holds cross-thread findings (barrier participation).
	Cross []Diagnostic
}

// OK reports whether every thread and the cross-thread checks passed.
func (s *SetReport) OK() bool {
	if len(s.Cross) > 0 {
		return false
	}
	for _, r := range s.Threads {
		if !r.OK() {
			return false
		}
	}
	return true
}

// AllDiags returns every diagnostic, thread-tagged, in thread order.
func (s *SetReport) AllDiags() []Diagnostic {
	var out []Diagnostic
	for _, r := range s.Threads {
		out = append(out, r.Diags...)
	}
	return append(out, s.Cross...)
}

// Err returns nil when the set passed, or an error listing every
// diagnostic.
func (s *SetReport) Err() error {
	if s.OK() {
		return nil
	}
	ds := s.AllDiags()
	msgs := make([]string, len(ds))
	for i, d := range ds {
		msgs[i] = d.String()
	}
	return fmt.Errorf("verify: %d finding(s):\n  %s", len(ds), strings.Join(msgs, "\n  "))
}

// Budget returns the sum of the per-thread budgets (saturating).
func (s *SetReport) Budget() uint64 {
	var total uint64
	for _, r := range s.Threads {
		total = satAdd(total, r.Budget)
	}
	return total
}

// Program verifies a single program.
func Program(p *isa.Program, opts Options) *Report {
	v := newVerifier(p, opts)
	return v.run()
}

// Threads verifies a thread set: each program individually, then
// barrier-participation consistency across threads.
func Threads(progs []*isa.Program, opts Options) *SetReport {
	set := &SetReport{}
	for tid, p := range progs {
		r := Program(p, opts)
		for i := range r.Diags {
			r.Diags[i].Thread = tid
		}
		set.Threads = append(set.Threads, r)
	}
	// Barrier participation: every thread whose episode count is
	// statically determinate must complete the same number of episodes.
	ref, refTid := -1, -1
	for tid, r := range set.Threads {
		if !r.OK() || r.Barriers < 0 {
			continue
		}
		if ref < 0 {
			ref, refTid = r.Barriers, tid
		} else if r.Barriers != ref {
			set.Cross = append(set.Cross, Diagnostic{
				Thread: tid, PC: -1, Check: "sync",
				Msg: fmt.Sprintf("barrier participation differs across threads: thread %d completes %d barrier episode(s) but thread %d completes %d",
					tid, r.Barriers, refTid, ref),
			})
		}
	}
	return set
}

// verifier holds the working state of one Program verification.
type verifier struct {
	p    *isa.Program
	opts Options
	n    int

	report *Report
	seen   map[diagKey]bool

	// in[i] is the joined abstract state on entry to instruction i;
	// nil means not yet reached.
	in []*absState
	// visits counts fixpoint visits per PC, to trigger widening.
	visits []int

	// doneBarriers accumulates the barrier count at reachable done
	// instructions; -2 = none seen yet, -1 = indeterminate.
	doneBarriers int
}

type diagKey struct {
	pc    int
	check string
	msg   string
}

func newVerifier(p *isa.Program, opts Options) *verifier {
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 1 << 20
	}
	return &verifier{
		p: p, opts: opts, n: len(p.Ins),
		report:       &Report{Barriers: -1},
		seen:         make(map[diagKey]bool),
		in:           make([]*absState, len(p.Ins)),
		visits:       make([]int, len(p.Ins)),
		doneBarriers: -2,
	}
}

func (v *verifier) diag(pc int, check, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	k := diagKey{pc, check, msg}
	if v.seen[k] {
		return
	}
	v.seen[k] = true
	d := Diagnostic{Thread: -1, PC: pc, Check: check, Msg: msg}
	if pc >= 0 && pc < v.n {
		d.Instr = v.p.Ins[pc].String()
	}
	v.report.Diags = append(v.report.Diags, d)
}

func (v *verifier) run() *Report {
	if v.n == 0 {
		v.diag(-1, "structure", "empty program")
		return v.report
	}
	if v.n > v.opts.MaxInstrs {
		v.diag(-1, "structure", "program has %d instructions, above the %d cap", v.n, v.opts.MaxInstrs)
		return v.report
	}
	v.structural()
	if len(v.report.Diags) > 0 {
		// Malformed encodings (bad targets, bad registers) make the
		// abstract interpretation itself ill-defined; stop here.
		v.sortDiags()
		return v.report
	}
	v.fixpoint()
	if v.doneBarriers == -2 {
		v.diag(-1, "structure", "no reachable done instruction")
	} else if v.doneBarriers >= 0 {
		v.report.Barriers = v.doneBarriers
	}
	v.analyzeLoops()
	v.sortDiags()
	return v.report
}

func (v *verifier) sortDiags() {
	sort.SliceStable(v.report.Diags, func(i, j int) bool {
		a, b := v.report.Diags[i], v.report.Diags[j]
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// structural validates every instruction's encoding independent of
// reachability.
func (v *verifier) structural() {
	for pc := range v.p.Ins {
		in := &v.p.Ins[pc]
		if in.Op > isa.Done {
			v.diag(pc, "structure", "unknown opcode %d", uint8(in.Op))
			continue
		}
		for _, r := range [...]isa.Reg{in.Rd, in.Rs, in.Rt, in.Base, in.ArgReg} {
			if r >= isa.NumRegs {
				v.diag(pc, "structure", "register r%d out of range (have %d registers)", r, isa.NumRegs)
			}
		}
		switch in.Op {
		case isa.Beq, isa.Bne, isa.Beqi, isa.Bnei, isa.Jmp:
			if in.Target < 0 || in.Target >= v.n {
				v.diag(pc, "structure", "branch target %d out of range [0,%d)", in.Target, v.n)
			}
		case isa.SyncBegin, isa.SyncEnd:
			k := isa.SyncKind(in.ImmVal)
			if uint64(k) != in.ImmVal || k == isa.SyncNone || k >= isa.NumSyncKinds {
				v.diag(pc, "structure", "undefined sync kind %d", in.ImmVal)
			}
		case isa.RMW:
			if in.RMWOp > memtypes.RMWCompareAndSwap {
				v.diag(pc, "structure", "undefined RMW op %d", uint8(in.RMWOp))
			}
			if in.RMWSt > memtypes.CBZero {
				v.diag(pc, "structure", "undefined RMW store half %d", uint8(in.RMWSt))
			}
		}
	}
}

// successors returns the control-flow successors of pc, diagnosing a
// fallthrough off the end of the program.
func (v *verifier) successors(pc int) []int {
	in := &v.p.Ins[pc]
	switch in.Op {
	case isa.Done:
		return nil
	case isa.Jmp:
		return []int{in.Target}
	case isa.Beq, isa.Bne, isa.Beqi, isa.Bnei:
		if pc+1 >= v.n {
			v.diag(pc, "structure", "conditional branch falls through past the end of the program")
			return []int{in.Target}
		}
		if in.Target == pc+1 {
			return []int{pc + 1}
		}
		return []int{pc + 1, in.Target}
	default:
		if pc+1 >= v.n {
			v.diag(pc, "structure", "falls through past the end of the program")
			return nil
		}
		return []int{pc + 1}
	}
}

func satAdd(a, b uint64) uint64 {
	if b > budgetCap || a > budgetCap-b {
		return budgetCap
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > budgetCap/b {
		return budgetCap
	}
	return a * b
}
