package cluster

import (
	"sync"

	"repro/internal/service"
)

// replicatedRecord is the wire unit of journal replication (POST
// /v1/cluster/journal): one service.JournalRecord stamped with the node
// it originated on.
type replicatedRecord struct {
	Origin string                `json:"origin"`
	Record service.JournalRecord `json:"record"`
}

// journalStore holds the journal records replicated to this node, per
// origin peer. It is the raw material for dead-peer adoption: folding an
// origin's records yields the jobs that peer accepted but never
// finished.
type journalStore struct {
	mu       sync.Mutex
	byOrigin map[string][]service.JournalRecord
}

func newJournalStore() *journalStore {
	return &journalStore{byOrigin: make(map[string][]service.JournalRecord)}
}

func (st *journalStore) add(origin string, rec service.JournalRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.byOrigin[origin] = append(st.byOrigin[origin], rec)
}

// records returns how many records are held for origin.
func (st *journalStore) records(origin string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byOrigin[origin])
}

// pending folds origin's replicated records into the requests of jobs
// that never reached a terminal state, in submission order — the same
// fold the origin itself would run on boot. Resubmitting them elsewhere
// is safe: results are deterministic and cells the origin did complete
// are reused through the content-addressed cache.
func (st *journalStore) pending(origin string) []service.JobRequest {
	st.mu.Lock()
	defer st.mu.Unlock()
	reqs := make(map[string]*service.JobRequest)
	done := make(map[string]bool)
	var order []string
	for _, r := range st.byOrigin[origin] {
		switch r.Op {
		case "submit":
			if r.Req == nil || reqs[r.ID] != nil {
				continue
			}
			reqs[r.ID] = r.Req
			order = append(order, r.ID)
		case "done":
			done[r.ID] = true
		}
	}
	var out []service.JobRequest
	for _, id := range order {
		if !done[id] {
			out = append(out, *reqs[id])
		}
	}
	return out
}

// drop forgets origin's records (after adoption, or when the origin
// comes back and re-owns its jobs).
func (st *journalStore) drop(origin string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.byOrigin, origin)
}
