package cycles

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// feed is shorthand for driving an accumulator with one core.
func feed(a *Accumulator, ev Event, cycle, x, y uint64) { a.Observe(0, ev, cycle, x, y) }

func TestExecReclassifiesSpinAndBarrier(t *testing.T) {
	a := NewAccumulator(1)
	feed(a, EvExec, 0, 10, uint64(isa.SyncNone))
	feed(a, EvExec, 0, 7, uint64(isa.SyncAcquire))
	feed(a, EvExec, 0, 5, uint64(isa.SyncBarrier))
	feed(a, EvExec, 0, 3, uint64(isa.SyncRelease))
	feed(a, EvDone, 25, 0, 0)
	ms := a.Snapshot(25)
	tot := ms.Totals()
	if tot[CatCompute] != 13 { // 10 none + 3 release
		t.Errorf("compute = %d, want 13", tot[CatCompute])
	}
	if tot[CatSpinWait] != 7 {
		t.Errorf("spin_wait = %d, want 7", tot[CatSpinWait])
	}
	if tot[CatBarrierWait] != 5 {
		t.Errorf("barrier_wait = %d, want 5", tot[CatBarrierWait])
	}
	if err := a.CheckConservation(25); err != nil {
		t.Fatal(err)
	}
}

func TestStallSegmentsClampedOverlapsAndGaps(t *testing.T) {
	a := NewAccumulator(1)
	feed(a, EvExec, 0, 10, uint64(isa.SyncNone)) // mark = 10
	feed(a, EvStallBegin, 10, uint64(isa.SyncNone), uint64(CatL1Stall))
	feed(a, EvSpan, 12, 14, uint64(CatNoC))      // [12,14) NoC
	feed(a, EvSpan, 13, 16, uint64(CatLLCStall)) // overlaps; first claim wins -> [14,16)
	feed(a, EvStallEnd, 18, 0, 0)                // gaps [10,12) and [16,18) -> L1 default
	feed(a, EvDone, 18, 0, 0)
	ms := a.Snapshot(18)
	tot := ms.Totals()
	want := map[Category]uint64{CatCompute: 10, CatL1Stall: 4, CatNoC: 2, CatLLCStall: 2}
	for cat, n := range want {
		if tot[cat] != n {
			t.Errorf("%s = %d, want %d", cat, tot[cat], n)
		}
	}
	if err := a.CheckConservation(18); err != nil {
		t.Fatal(err)
	}
}

func TestOpenLegCommitsProvisionallyAtHorizon(t *testing.T) {
	a := NewAccumulator(1)
	feed(a, EvStallBegin, 0, uint64(isa.SyncWait), uint64(CatL1Stall))
	feed(a, EvOpen, 5, uint64(CatCBBlocked), 0)
	// No close, no stall end: the snapshot closes and commits at the
	// horizon without perturbing live state.
	ms := a.Snapshot(20)
	tot := ms.Totals()
	if tot[CatCBBlocked] != 15 {
		t.Errorf("cb_blocked = %d, want 15", tot[CatCBBlocked])
	}
	// The gap [0,5) falls to the default, reclassified: L1 time inside a
	// wait phase is the spin loop itself.
	if tot[CatSpinWait] != 5 {
		t.Errorf("spin_wait = %d, want 5", tot[CatSpinWait])
	}
	// Live state unperturbed: a later stall end commits the real window.
	feed(a, EvClose, 30, 0, 0)
	feed(a, EvStallEnd, 40, 0, 0)
	feed(a, EvDone, 40, 0, 0)
	if err := a.CheckConservation(40); err != nil {
		t.Fatal(err)
	}
	if got := a.Snapshot(40).Totals()[CatCBBlocked]; got != 25 {
		t.Errorf("cb_blocked after real commit = %d, want 25", got)
	}
}

func TestSnapshotFillsIdleAfterDone(t *testing.T) {
	a := NewAccumulator(2)
	a.Observe(0, EvExec, 0, 10, uint64(isa.SyncNone))
	a.Observe(0, EvDone, 10, 0, 0)
	a.Observe(1, EvExec, 0, 20, uint64(isa.SyncNone))
	a.Observe(1, EvDone, 20, 0, 0)
	ms := a.Snapshot(20)
	if got := ms.Cores[0].Categories()[CatIdle]; got != 10 {
		t.Errorf("core 0 idle = %d, want 10", got)
	}
	if got := ms.Cores[1].Categories()[CatIdle]; got != 0 {
		t.Errorf("core 1 idle = %d, want 0", got)
	}
	if err := a.CheckConservation(20); err != nil {
		t.Fatal(err)
	}
	if ms.TotalCycles() != 40 {
		t.Errorf("TotalCycles = %d, want 40", ms.TotalCycles())
	}
}

func TestBackoffWaitCategory(t *testing.T) {
	a := NewAccumulator(1)
	feed(a, EvWait, 0, 8, uint64(isa.SyncWait))
	feed(a, EvWait, 0, 4, uint64(isa.SyncBarrier))
	feed(a, EvDone, 12, 0, 0)
	tot := a.Snapshot(12).Totals()
	if tot[CatSpinWait] != 8 || tot[CatBarrierWait] != 4 {
		t.Errorf("spin=%d barrier=%d, want 8/4", tot[CatSpinWait], tot[CatBarrierWait])
	}
}

func TestNoCMsgCyclesUnionOfIntervals(t *testing.T) {
	a := NewAccumulator(1)
	feed(a, EvNoCSend, 0, 0, 0)
	feed(a, EvNoCSend, 5, 0, 0) // nested: union, not sum
	feed(a, EvNoCDeliver, 8, 0, 0)
	feed(a, EvNoCDeliver, 10, 0, 0)
	feed(a, EvNoCSend, 20, 0, 0)
	ms := a.Snapshot(25) // open interval [20,25) counts to the horizon
	if ms.NoCMsgCycles != 15 {
		t.Errorf("NoCMsgCycles = %d, want 15 (10 closed + 5 open)", ms.NoCMsgCycles)
	}
}

func TestOutOfRangeCoreDropped(t *testing.T) {
	a := NewAccumulator(2)
	a.Observe(7, EvExec, 0, 100, 0) // mesh tag beyond the core count
	a.Observe(-1, EvExec, 0, 100, 0)
	for i, c := range a.Snapshot(0).Cores {
		if c.Total() != 0 {
			t.Errorf("core %d total = %d, want 0", i, c.Total())
		}
	}
}

func TestWriteFolded(t *testing.T) {
	a := NewAccumulator(1)
	feed(a, EvExec, 0, 10, uint64(isa.SyncNone))
	feed(a, EvExec, 0, 4, uint64(isa.SyncAcquire))
	feed(a, EvDone, 14, 0, 0)
	var b strings.Builder
	if err := WriteFolded(&b, []SetupStack{{Setup: "CB-One", Stack: a.Snapshot(14)}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"CB-One;core00;phase:none;compute 10\n",
		"CB-One;core00;phase:acquire;spin_wait 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 2 {
		t.Errorf("folded output has %d lines, want 2 (zero cells elided):\n%s", n, out)
	}
}

// Steady-state accounting must be allocation-free: the only allocations
// are the segment slice's initial growth, reused across stalls via
// segs[:0]. This is the hot-path half of the purity contract.
func TestObserveZeroAllocsSteadyState(t *testing.T) {
	a := NewAccumulator(4)
	cycle := uint64(0)
	stall := func() {
		for core := 0; core < 4; core++ {
			c := uint64(core)
			a.Observe(core, EvExec, 0, 5, uint64(isa.SyncAcquire))
			a.Observe(core, EvStallBegin, cycle+c, uint64(isa.SyncAcquire), uint64(CatL1Stall))
			a.Observe(core, EvNoCSend, cycle+c, 0, 0)
			a.Observe(core, EvOpen, cycle+c, uint64(CatNoC), 0)
			a.Observe(core, EvNoCDeliver, cycle+c+4, 0, 0)
			a.Observe(core, EvClose, cycle+c+4, 0, 0)
			a.Observe(core, EvSpan, cycle+c+4, cycle+c+6, uint64(CatLLCStall))
			a.Observe(core, EvStallEnd, cycle+c+8, 0, 0)
		}
		cycle += 16
	}
	stall() // warm the segment slices
	allocs := testing.AllocsPerRun(500, stall)
	if allocs != 0 {
		t.Fatalf("steady-state accounting allocated %.1f times per stall round, want 0", allocs)
	}
}
