package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, s snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// ratioPairs are healthy same-machine ratio entries, included so the
// diff failures under test are not drowned out by missing-ratio noise.
func ratioPairs() map[string]benchPerf {
	return map[string]benchPerf{
		"spin_wave_wheel":    {NsPerOp: 100},
		"spin_wave_heap":     {NsPerOp: 300},
		"snapshot_fork_cold": {NsPerOp: 1e6},
		"snapshot_fork_warm": {NsPerOp: 0.9e6},
		"replay_record_off":  {NsPerOp: 1e6},
		"replay_record_on":   {NsPerOp: 1.8e6},
	}
}

// TestGateReportsAllFailuresInOneRun pins that the gate collects every
// out-of-tolerance entry instead of stopping at the first: a single CI
// run must show the full damage report.
func TestGateReportsAllFailuresInOneRun(t *testing.T) {
	dir := t.TempDir()
	base := snapshot{Benchmarks: ratioPairs()}
	base.Benchmarks["alloc_regressed"] = benchPerf{NsPerOp: 100, AllocsPerOp: 0}
	base.Benchmarks["ns_cliff"] = benchPerf{NsPerOp: 100, AllocsPerOp: 2}
	base.Benchmarks["dropped"] = benchPerf{NsPerOp: 100}
	base.Benchmarks["healthy"] = benchPerf{NsPerOp: 100, AllocsPerOp: 1}

	pr := snapshot{Benchmarks: ratioPairs()}
	pr.Benchmarks["alloc_regressed"] = benchPerf{NsPerOp: 100, AllocsPerOp: 3}
	pr.Benchmarks["ns_cliff"] = benchPerf{NsPerOp: 1000, AllocsPerOp: 2}
	// "dropped" deliberately absent from the PR snapshot.
	pr.Benchmarks["healthy"] = benchPerf{NsPerOp: 150, AllocsPerOp: 1}

	failures, err := gate(
		writeSnapshot(t, dir, "base.json", base),
		writeSnapshot(t, dir, "pr.json", pr), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 3 {
		t.Fatalf("failures = %d, want 3:\n%s", len(failures), strings.Join(failures, "\n"))
	}
	wants := []string{
		"alloc_regressed: allocs/op 3, baseline 0",
		"ns_cliff: 1000.0 ns/op exceeds 4x baseline 100.0",
		"dropped: present in baseline but missing from PR snapshot",
	}
	for _, want := range wants {
		found := false
		for _, f := range failures {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("failures missing %q:\n%s", want, strings.Join(failures, "\n"))
		}
	}
	for _, f := range failures {
		if strings.Contains(f, "healthy") {
			t.Errorf("healthy benchmark flagged: %s", f)
		}
	}
}

// TestGateRatioFailuresAccumulateToo: a broken same-machine ratio is
// reported alongside the per-benchmark diffs, not instead of them.
func TestGateRatioFailuresAccumulateToo(t *testing.T) {
	dir := t.TempDir()
	base := snapshot{Benchmarks: ratioPairs()}
	base.Benchmarks["ns_cliff"] = benchPerf{NsPerOp: 100}

	pr := snapshot{Benchmarks: ratioPairs()}
	pr.Benchmarks["ns_cliff"] = benchPerf{NsPerOp: 1000}
	pr.Benchmarks["spin_wave_wheel"] = benchPerf{NsPerOp: 200} // lead only 1.5x
	delete(pr.Benchmarks, "replay_record_on")

	failures, err := gate(
		writeSnapshot(t, dir, "base.json", base),
		writeSnapshot(t, dir, "pr.json", pr), 4)
	if err != nil {
		t.Fatal(err)
	}
	// ns cliff + wheel lead lost + replay pair missing twice (as a
	// dropped baseline benchmark and as a broken ratio).
	wants := []string{
		"ns_cliff: 1000.0 ns/op",
		"lead 1.50x, want >= 2x",
		"replay_record_on/replay_record_off missing",
		"replay_record_on: present in baseline but missing",
	}
	for _, want := range wants {
		found := false
		for _, f := range failures {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("failures missing %q:\n%s", want, strings.Join(failures, "\n"))
		}
	}
}

// TestGateCleanRunPasses: matching snapshots with healthy ratios
// produce no failures.
func TestGateCleanRunPasses(t *testing.T) {
	dir := t.TempDir()
	s := snapshot{Benchmarks: ratioPairs()}
	s.Benchmarks["kernel"] = benchPerf{NsPerOp: 42, AllocsPerOp: 0}
	failures, err := gate(
		writeSnapshot(t, dir, "base.json", s),
		writeSnapshot(t, dir, "pr.json", s), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("clean run produced failures:\n%s", strings.Join(failures, "\n"))
	}
}
