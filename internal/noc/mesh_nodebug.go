//go:build !cbsimdebug

package noc

import "repro/internal/memtypes"

// meshDebug is empty in release builds: the double-free guard lives in
// mesh_debug.go behind -tags cbsimdebug and costs nothing here.
type meshDebug struct{}

//cbsim:hotpath
func (m *Mesh) getMessage() *memtypes.Message { return m.pool.Get() }

//cbsim:hotpath
func (m *Mesh) putMessage(msg *memtypes.Message) { m.pool.Put(msg) }
