// Package hotpath defines the cbvet analyzer that makes the simulator's
// zero-allocation guarantee a static property.
//
// PR 1 rebuilt the kernel event loop and NoC routing to run at 0
// allocs/op, but that guarantee lived only in AllocsPerRun benchmarks: a
// stray closure or fmt call would pass every functional test and only
// show up as a benchmark regression. Functions annotated
//
//	//cbsim:hotpath
//
// are instead checked at vet time: their bodies must contain no
// construct that forces a heap allocation on the happy path. Cold panic
// paths are exempt — anything inside a panic(...) argument may allocate,
// since the simulation is already dead at that point.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces allocation-freedom of //cbsim:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: `forbid allocating constructs in //cbsim:hotpath functions

Inside an annotated function the following are diagnostics (except under
a panic(...) argument, which is a cold path):

  - func literals that capture enclosing variables (closure allocation)
  - method values used as func values (bound-method allocation)
  - calls into package fmt (boxing + formatting buffers)
  - non-constant string concatenation
  - map/slice composite literals, make, new, and &T{...} literals
  - conversions of non-pointer-shaped concrete values to interfaces
    (boxing), including implicit ones at call arguments, assignments,
    returns, and struct-literal fields

append is deliberately allowed: hot-path containers are pre-grown, so
append is amortized allocation-free and the AllocsPerRun benchmarks keep
it honest. A deliberate cold- or growth-path allocation can be waived
with a //cbvet:alloc-ok comment on (or above) the offending line; the
waiver is a documented exception, not an off switch.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		var ld *analysis.LineDirectives
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.HasDirective(fd.Doc, "cbsim:hotpath") {
				continue
			}
			if ld == nil {
				ld = analysis.NewLineDirectives(pass.Fset, file)
			}
			check(pass, fd, ld)
		}
	}
	return nil
}

// checker walks one annotated function body.
type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// panics are the [Pos,End) intervals of panic(...) arguments; nodes
	// inside them are exempt.
	panics [][2]token.Pos
	// calleePos marks SelectorExpr/Ident nodes in call position, so
	// method *calls* are not mistaken for method *values*.
	calleePos map[ast.Expr]bool
	// sigs is the innermost-function signature stack, for matching
	// return statements to result types.
	sigs []*types.Signature
	// ld resolves //cbvet:alloc-ok waivers.
	ld *analysis.LineDirectives
}

func check(pass *analysis.Pass, fd *ast.FuncDecl, ld *analysis.LineDirectives) {
	c := &checker{pass: pass, fn: fd, calleePos: map[ast.Expr]bool{}, ld: ld}

	// Pre-pass: collect panic-argument intervals and call positions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.calleePos[ast.Unparen(call.Fun)] = true
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" && len(call.Args) == 1 {
				c.panics = append(c.panics, [2]token.Pos{call.Args[0].Pos(), call.Args[0].End()})
			}
		}
		return true
	})

	if sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature); ok {
		c.sigs = append(c.sigs, sig)
	}
	c.walk(fd.Body)
}

func (c *checker) exempt(pos token.Pos) bool {
	for _, iv := range c.panics {
		if iv[0] <= pos && pos < iv[1] {
			return true
		}
	}
	return false
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.exempt(pos) {
		return
	}
	if c.ld != nil && c.ld.Covers(pos, "cbvet:alloc-ok") {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		c.checkFuncLit(n)
		if sig, ok := c.pass.TypesInfo.Types[n].Type.(*types.Signature); ok {
			c.sigs = append(c.sigs, sig)
			defer func() { c.sigs = c.sigs[:len(c.sigs)-1] }()
		}
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.SelectorExpr:
		c.checkMethodValue(n)
	case *ast.BinaryExpr:
		c.checkConcat(n)
	case *ast.CompositeLit:
		c.checkCompositeLit(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.report(n.Pos(), "hotpath: &%s literal allocates; reuse a pre-allocated object", typeName(c.pass, n.X))
			}
		}
	case *ast.AssignStmt:
		c.checkAssign(n)
	case *ast.ValueSpec:
		c.checkValueSpec(n)
	case *ast.ReturnStmt:
		c.checkReturn(n)
	}
	// Recurse in source order.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		if child != nil {
			c.walk(child)
		}
		return false
	})
}

// checkFuncLit flags closures that capture enclosing-function variables.
func (c *checker) checkFuncLit(lit *ast.FuncLit) {
	fnStart, fnEnd := c.fn.Pos(), c.fn.End()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		declaredInEnclosing := pos >= fnStart && pos < fnEnd
		declaredInLit := pos >= lit.Pos() && pos < lit.End()
		if declaredInEnclosing && !declaredInLit {
			c.report(lit.Pos(), "hotpath: func literal captures %q: the closure allocates per call; use sim.Actor or pre-bound state", id.Name)
			return false
		}
		return true
	})
}

// checkMethodValue flags `x.M` used as a value (allocates a bound-method
// closure); method calls `x.M(...)` are fine.
func (c *checker) checkMethodValue(sel *ast.SelectorExpr) {
	if c.calleePos[sel] {
		return
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	c.report(sel.Pos(), "hotpath: method value %s.%s allocates a bound closure; call it directly or use sim.Actor", typeName(c.pass, sel.X), sel.Sel.Name)
}

func (c *checker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversion, e.g. I(x)?
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			c.checkBox(call.Args[0], tv.Type, "conversion")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "hotpath: make allocates; pre-size containers outside the hot path")
			case "new":
				c.report(call.Pos(), "hotpath: new allocates; reuse a pre-allocated object")
			}
			return
		}
	}

	// fmt calls.
	if obj := calleeObj(c.pass, fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "hotpath: fmt.%s allocates (boxing and format buffers); move formatting off the hot path", obj.Name())
		return
	}

	// Implicit boxing at argument positions.
	sig, ok := c.pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBox(arg, pt, "argument")
	}
}

func (c *checker) checkConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.report(be.Pos(), "hotpath: string concatenation allocates; precompute or carry numbers instead (see trace.Event.Arg)")
	}
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Map:
		c.report(lit.Pos(), "hotpath: map literal allocates; build the map outside the hot path")
	case *types.Slice:
		c.report(lit.Pos(), "hotpath: slice literal allocates; use a pre-grown buffer or an array")
	case *types.Struct:
		// Struct values are stack-allocated, but interface-typed fields
		// still box their initializers.
		for i, elt := range lit.Elts {
			var ft types.Type
			var val ast.Expr
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < u.NumFields(); j++ {
						if u.Field(j).Name() == key.Name {
							ft = u.Field(j).Type()
							break
						}
					}
				}
				val = kv.Value
			} else if i < u.NumFields() {
				ft = u.Field(i).Type()
				val = elt
			}
			c.checkBox(val, ft, "field")
		}
	}
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := c.pass.TypesInfo.TypeOf(as.Lhs[i])
		c.checkBox(as.Rhs[i], lt, "assignment")
	}
}

func (c *checker) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	t := c.pass.TypesInfo.TypeOf(vs.Type)
	for _, v := range vs.Values {
		c.checkBox(v, t, "assignment")
	}
}

func (c *checker) checkReturn(rs *ast.ReturnStmt) {
	if len(c.sigs) == 0 {
		return
	}
	res := c.sigs[len(c.sigs)-1].Results()
	if res.Len() != len(rs.Results) {
		return
	}
	for i, r := range rs.Results {
		c.checkBox(r, res.At(i).Type(), "return")
	}
}

// checkBox reports expr if assigning it to type `to` boxes a
// non-pointer-shaped concrete value into an interface (a heap
// allocation). Pointer-shaped values (pointers, channels, maps, funcs,
// unsafe.Pointer) box for free; constants may be folded into read-only
// statics and are left to the benchmarks.
func (c *checker) checkBox(expr ast.Expr, to types.Type, what string) {
	if expr == nil || to == nil {
		return
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	from := tv.Type
	if _, ok := from.Underlying().(*types.Interface); ok {
		return
	}
	switch u := from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	c.report(expr.Pos(), "hotpath: %s boxes %s into %s (allocates); pass a pointer or restructure", what, from, to)
}

// calleeObj resolves the called function's object, if it is a named
// function or method.
func calleeObj(pass *analysis.Pass, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func typeName(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypesInfo.TypeOf(e); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	return "?"
}
