// Test files are exempt even inside sim-core packages: tests may time
// themselves, shuffle inputs, and spawn goroutines. No want comments —
// any diagnostic from this file fails the harness.
package fixture

import "time"

func testOnlyTimestamp() time.Time { return time.Now() }

func testOnlySpawn(f func()) { go f() }
