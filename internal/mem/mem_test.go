package mem

import (
	"testing"

	"repro/internal/memtypes"
)

func TestStoreRoundtrip(t *testing.T) {
	s := NewStore()
	if s.Load(0x100) != 0 {
		t.Fatal("fresh store should read zero")
	}
	s.StoreWord(0x104, 7) // non-aligned address maps to its word
	if s.Load(0x100) != 7 {
		t.Fatalf("Load = %d, want 7 (same word)", s.Load(0x100))
	}
	s.StoreWord(0x100, 0)
	if s.Load(0x107) != 0 {
		t.Fatal("zero store did not clear")
	}
}

func TestLoadLine(t *testing.T) {
	s := NewStore()
	s.StoreWord(0x40, 1)
	s.StoreWord(0x78, 8)  // last word of line 0x40
	l := s.LoadLine(0x50) // any address within the line
	if l[0] != 1 || l[7] != 8 {
		t.Fatalf("line = %v, want word0=1 word7=8", l)
	}
}

func TestStoreLineWords(t *testing.T) {
	s := NewStore()
	s.StoreWord(0x48, 99) // word 1, should survive masked write
	var l memtypes.Line
	l[0], l[2] = 10, 30
	var mask [memtypes.WordsPerLine]bool
	mask[0], mask[2] = true, true
	s.StoreLineWords(0x40, l, mask)
	if s.Load(0x40) != 10 || s.Load(0x50) != 30 {
		t.Fatal("masked words not written")
	}
	if s.Load(0x48) != 99 {
		t.Fatal("unmasked word clobbered")
	}
}

func TestBankHitMissLatency(t *testing.T) {
	b := NewBank()
	lat := b.Access(0x1000, true, 0)
	if lat != DefaultDataLatency+DefaultMemLatency {
		t.Fatalf("cold access latency = %d, want %d", lat, DefaultDataLatency+DefaultMemLatency)
	}
	lat = b.Access(0x1000, true, 0)
	if lat != DefaultDataLatency {
		t.Fatalf("hit latency = %d, want %d", lat, DefaultDataLatency)
	}
	lat = b.Access(0x1008, false, 0)
	if lat != DefaultTagLatency {
		t.Fatalf("tag-only hit latency = %d, want %d", lat, DefaultTagLatency)
	}
	st := b.Stats()
	if st.Accesses != 3 || st.Misses != 1 || st.DataAccesses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBankSyncAttribution(t *testing.T) {
	b := NewBank()
	b.Access(0x40, true, 2)
	b.Access(0x40, true, 0)
	b.Access(0x40, true, 2)
	if got := b.Stats().SyncAccesses; got != 2 {
		t.Fatalf("SyncAccesses = %d, want 2", got)
	}
}

func TestBankEvictionSilent(t *testing.T) {
	b := NewBank()
	// 256KB / 64B = 4096 lines; fill more than capacity within one set
	// by striding the set-index distance: sets = 256, so addresses
	// 64*256 apart collide. 17 collides past 16 ways.
	stride := memtypes.Addr(64 * 256)
	for i := memtypes.Addr(0); i < 17; i++ {
		b.Access(i*stride, true, 0)
	}
	if b.Present(0) {
		t.Fatal("line 0 should have been evicted (LRU)")
	}
	// Re-access pays memory latency again.
	if lat := b.Access(0, true, 0); lat != DefaultDataLatency+DefaultMemLatency {
		t.Fatalf("post-eviction latency = %d", lat)
	}
}
