package cache

import "math/bits"

// This file implements deterministic snapshot/restore for machine
// warm-starts (machine.Snapshot). Only the mutable state is captured —
// valid lines (including their unexported LRU stamps), the LRU tick, and
// the access counters; geometry is structural and must match at restore.
// Capturing valid lines only keeps zero-state snapshots tiny (a fresh
// 64-core machine holds ~26MB of line backing, all invalid), and restore
// of such a snapshot degenerates to a memclr.

// SavedLine locates one valid line by its physical position so restore
// reproduces way placement (and therefore future victim choice) exactly.
type SavedLine[P any] struct {
	Set  int
	Way  int
	Line Line[P]
}

// ArrayState is a deep copy of an Array's mutable state. The per-line
// protocol payload P is copied by value: every instantiation in the tree
// uses flat value types (MESI state enum, VIPS dirty masks), so the copy
// is deep.
type ArrayState[P any] struct {
	Lines    []SavedLine[P]
	Tick     uint64
	Accesses uint64
	Hits     uint64
}

// State captures the array's mutable state.
func (a *Array[P]) State() ArrayState[P] {
	st := ArrayState[P]{Tick: a.tick, Accesses: a.Accesses, Hits: a.Hits}
	for s, m := range a.occ {
		for ; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			st.Lines = append(st.Lines, SavedLine[P]{Set: s, Way: w, Line: a.sets[s][w]})
		}
	}
	return st
}

// SetState overwrites the array's mutable state with a previously
// captured one. The array must have the geometry the state was captured
// from; out-of-range positions panic.
func (a *Array[P]) SetState(st ArrayState[P]) {
	for s := range a.sets {
		clear(a.sets[s])
	}
	clear(a.occ)
	for _, sl := range st.Lines {
		a.sets[sl.Set][sl.Way] = sl.Line
		if sl.Line.Valid {
			a.occ[sl.Set] |= 1 << sl.Way
		}
	}
	a.tick = st.Tick
	a.Accesses = st.Accesses
	a.Hits = st.Hits
}
