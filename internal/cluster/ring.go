// Package cluster turns N independent cbsimd daemons into one
// peer-replicated, failure-tolerant simulation service. Membership is
// static (the -peers flag); the content-addressed result cache is
// consistent-hashed across members (cell key -> owner + replicas);
// queued cells are forwarded to their owner or offloaded to idle peers;
// cache fills are gossiped to the key's replica set; and the job journal
// is streamed to ring successors so a surviving replica can re-own a
// dead peer's unfinished jobs.
//
// Correctness never depends on any of this working: every cell result
// is deterministic and content-addressed, so a remote fetch, a forwarded
// computation, and a local simulation produce byte-identical payloads.
// Cluster machinery is purely an accelerator — a fully partitioned node
// degrades to standalone behavior (never 500s, only slower), which is
// what internal/cluster/clustertest proves under seeded network faults.
//
// The package sits at the RPC edge, outside the deterministic simulation
// core, so it is deliberately exempt from the cbvet determinism analyzer
// (wall-clock timeouts and goroutines are its job; see
// internal/analysis).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the number of virtual points each member contributes
// to the ring. More points smooth the key distribution; the value only
// has to be identical on every member for lookups to agree.
const defaultVnodes = 64

// Ring is a consistent-hash ring over a static membership. It is
// immutable after construction and safe for concurrent use. Every member
// builds its ring from the same sorted member list, so all members agree
// on every key's owner and replica set without coordination.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 is FNV-1a with a splitmix64 finalizer: plain FNV of short,
// near-identical strings ("node-1#17") leaves the points lumpy enough to
// badly skew ownership; the finalizer avalanches them across the ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRing builds a ring over members (deduplicated, sorted) with vnodes
// virtual points per member (defaultVnodes when <= 0).
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	seen := make(map[string]bool, len(members))
	sorted := make([]string, 0, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			sorted = append(sorted, m)
		}
	}
	sort.Strings(sorted)
	r := &Ring{members: sorted}
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", m, v)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Members returns the sorted membership.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Lookup returns the n distinct members responsible for key, owner
// first, walking clockwise from the key's point. n is clamped to the
// membership size.
func (r *Ring) Lookup(key string, n int) []string {
	return r.walk(hash64(key), n, "")
}

// Successors returns up to n distinct members that follow member's first
// virtual point clockwise, excluding member itself. This is the replica
// set for member-scoped state (its journal stream): the members that
// take over when it dies.
func (r *Ring) Successors(member string, n int) []string {
	return r.walk(hash64(fmt.Sprintf("%s#0", member))+1, n, member)
}

func (r *Ring) walk(from uint64, n int, skip string) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	limit := len(r.members)
	if skip != "" {
		limit--
	}
	if n > limit {
		n = limit
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= from })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.node == skip || seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
