// Package fixture plants every nondeterminism source the determinism
// analyzer must catch, next to the deterministic variant it must accept.
// The analysistest harness checks it under the synthetic sim-core import
// path repro/internal/sim/fixture.
package fixture

import (
	"math/rand"
	"time"
)

func WallClock() time.Duration {
	start := time.Now()      // want "time.Now"
	return time.Since(start) // want "time.Since"
}

func GlobalRand() int {
	return rand.Intn(10) // want "math/rand.Intn"
}

// OwnedRand is the approved pattern: an explicitly seeded, owned stream.
// Methods on *rand.Rand are fine; only the package-level functions draw
// from the shared global source.
func OwnedRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func SumUnsorted(m map[int]uint64) uint64 {
	var total uint64
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// SumWaived carries the waiver: addition is commutative, so iteration
// order cannot leak into the result.
func SumWaived(m map[int]uint64) uint64 {
	var total uint64
	//cbvet:unordered commutative sum, order-independent
	for _, v := range m {
		total += v
	}
	return total
}

func Spawn(f func()) {
	go f() // want "go statement"
}
