package cpu

import (
	"repro/internal/digest"
)

// Digest folds the core's architectural and micro-architectural state:
// registers, program counter, back-off ladder position, the open
// synchronization-phase stack, run flags, and counters. The program
// itself is excluded — it is immutable input, and the machine
// configurations a bisection compares already run the same programs
// (DigestCompatible checks the config; the program is the caller's
// responsibility, exactly as for Snapshot/Restore).
func (c *Core) Digest(h *digest.Hash) {
	for _, r := range c.regs {
		h.U64(r)
	}
	h.Int(c.pc)
	h.Int(c.backoffCount)
	h.Int(len(c.syncStack))
	for _, f := range c.syncStack {
		h.Int(int(f.kind))
		h.U64(f.start)
	}
	h.Bool(c.started)
	h.Bool(c.done)
	c.stats.Digest(h)
}

// Digest folds every Stats field in declaration order. This is the
// struct's digest manifest: a new counter must be folded here too, or
// replay verification goes blind to it.
func (s *Stats) Digest(h *digest.Hash) {
	h.U64(s.Instructions)
	h.U64(s.MemOps)
	h.U64(s.ComputeCycles)
	h.U64(s.BackoffCycles)
	h.U64(s.MemStallCycles)
	h.U64(s.DoneAt)
	for _, v := range s.SyncCycles {
		h.U64(v)
	}
	for _, v := range s.SyncEntries {
		h.U64(v)
	}
	h.U64(s.StaleResponses)
}
