package noc

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/memtypes"
	"repro/internal/sim"
)

func TestMsgPoolRecycles(t *testing.T) {
	var p memtypes.MsgPool
	m1 := p.Get()
	m1.Addr = 0xdead
	p.Put(m1)
	if p.Len() != 1 {
		t.Fatalf("pool Len = %d, want 1", p.Len())
	}
	m2 := p.Get()
	if m2 != m1 {
		t.Fatal("pool did not reuse the freed message")
	}
	if *m2 != (memtypes.Message{}) {
		t.Fatalf("recycled message not zeroed: %+v", m2)
	}
}

// A pooled message travelling the mesh must cost zero heap allocations per
// hop in steady state: the event heap is pre-grown, hops are actor events,
// and the message itself is recycled by the consuming handler.
func TestPooledSendZeroAllocs(t *testing.T) {
	k := sim.New()
	m := New(k, 4, 4)
	for n := 0; n < m.Nodes(); n++ {
		m.Attach(memtypes.NodeID(n), HandlerFunc(func(msg *memtypes.Message) {
			m.Free(msg)
		}))
	}
	send := func() {
		msg := m.NewMessage()
		msg.Src, msg.Dst = 0, 15 // corner to corner: 6 hops
		msg.Class = memtypes.ClassControl
		m.Send(msg)
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	send() // warm the pool and the free-list backing array
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Fatalf("pooled send allocated %.1f times per message, want 0", allocs)
	}
}

// The cycle-accounting hook must not break the zero-alloc hot path: a
// pooled message travelling the mesh with an accounting observer
// attached still costs zero heap allocations per hop in steady state
// (the hook is a func field called with scalar args — no boxing).
func TestPooledSendZeroAllocsWithCyclesObserver(t *testing.T) {
	k := sim.New()
	m := New(k, 4, 4)
	a := cycles.NewAccumulator(16)
	m.SetCyclesObserver(a.Observe)
	for n := 0; n < m.Nodes(); n++ {
		m.Attach(memtypes.NodeID(n), HandlerFunc(func(msg *memtypes.Message) {
			m.Free(msg)
		}))
	}
	send := func() {
		msg := m.NewMessage()
		msg.Src, msg.Dst = 0, 15
		msg.Core = 3
		msg.Class = memtypes.ClassControl
		m.Send(msg)
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	send()
	allocs := testing.AllocsPerRun(200, send)
	if allocs != 0 {
		t.Fatalf("observed send allocated %.1f times per message, want 0", allocs)
	}
}
