// Command cbvet runs the repository's custom static analyzers: the
// invariants that keep the simulator deterministic (determinism),
// leak-free (msgfree), allocation-free on annotated hot paths (hotpath),
// and observationally pure in trace hooks (obsreadonly).
//
// Two modes:
//
//	cbvet ./...                          # standalone driver
//	go vet -vettool=$(which cbvet) ./... # unit-checker under cmd/go
//
// In standalone mode cbvet loads, type-checks, and analyzes the matched
// packages itself (source importer; no compiled export data needed). As
// a vet tool it speaks cmd/go's unit-checker protocol: go vet invokes it
// once per package with a JSON config naming the package's files and the
// compiled export data of its dependencies.
//
// Diagnostics are printed as file:line:col: [analyzer] message; the exit
// status is non-zero when any diagnostic is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/msgfree"
	"repro/internal/analysis/obsreadonly"
	"repro/internal/analysis/statecov"
	"repro/internal/analysis/waivers"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	msgfree.Analyzer,
	hotpath.Analyzer,
	obsreadonly.Analyzer,
	statecov.Analyzer,
	waivers.Analyzer,
}

func main() {
	args := os.Args[1:]

	// cmd/go probes the tool's identity and flag set before use.
	if len(args) > 0 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("%s version cbvet-1.0\n", progName())
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		}
	}

	// Unit-checker mode: a single *.cfg argument from go vet.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}

	fs := flag.NewFlagSet("cbvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (machine-readable, module-relative paths)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cbvet [-json] [packages]\n       go vet -vettool=$(which cbvet) [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	os.Exit(standalone(fs.Args(), *jsonOut))
}

func progName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// standalone loads the packages itself and runs every analyzer.
func standalone(patterns []string, jsonOut bool) int {
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvet:", err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvet:", err)
		return 1
	}
	if jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "cbvet:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", relPosition(d.Fset, d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cbvet: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

func relPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	p.Filename = relFile(p.Filename)
	return p.String()
}

// relFile rewrites name relative to the module root (the nearest parent
// directory of the working directory holding a go.mod), falling back to
// the working directory, so output is stable regardless of checkout
// location — CI problem matchers and editors resolve it against the
// repo root.
func relFile(name string) string {
	base, err := os.Getwd()
	if err != nil {
		return name
	}
	for dir := base; ; {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			base = dir
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// jsonDiagnostic is one finding in cbvet -json output.
type jsonDiagnostic struct {
	File     string `json:"file"` // module-relative, forward slashes
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.LabeledDiagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		p := d.Fset.Position(d.Pos)
		out = append(out, jsonDiagnostic{
			File:     relFile(p.Filename),
			Line:     p.Line,
			Col:      p.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// vetConfig mirrors the JSON configuration cmd/go passes to vet tools
// (the unit-checker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool implements one per-package invocation under go vet.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cbvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go requires the facts file regardless; cbvet's analyzers are
	// package-local, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("cbvet-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cbvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := gcImporter(fset, &cfg)
	pkg, err := analysis.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cbvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2 // the unit-checker "diagnostics reported" status
	}
	return 0
}

// gcImporter resolves imports from the compiled export data cmd/go
// already built for the package's dependencies, falling back to the
// source importer (useful for stdlib packages when export data is
// unavailable).
func gcImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &fallbackImporter{
		primary:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

type fallbackImporter struct {
	primary  types.Importer
	fallback types.Importer
}

func (f *fallbackImporter) Import(path string) (*types.Package, error) {
	pkg, err := f.primary.Import(path)
	if err == nil {
		return pkg, nil
	}
	if pkg2, err2 := f.fallback.Import(path); err2 == nil {
		return pkg2, nil
	}
	return nil, err
}
