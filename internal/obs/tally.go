package obs

import (
	"fmt"
	"strings"
)

// Tally counts occurrences by string key, remembering first-seen order —
// the shared primitive behind quick summaries (trace.Summarize) and
// hand-rolled "count by kind" code paths.
//
// Tally is not safe for concurrent use; it is a single-goroutine
// aggregation helper, unlike the registry's metrics.
type Tally struct {
	counts map[string]uint64
	order  []string
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{counts: make(map[string]uint64)}
}

// Add increments key by n.
func (t *Tally) Add(key string, n uint64) {
	if _, seen := t.counts[key]; !seen {
		t.order = append(t.order, key)
	}
	t.counts[key] += n
}

// Inc increments key by one.
func (t *Tally) Inc(key string) { t.Add(key, 1) }

// Count returns key's count (0 if never added).
func (t *Tally) Count(key string) uint64 { return t.counts[key] }

// Keys returns the keys in first-seen order.
func (t *Tally) Keys() []string { return append([]string(nil), t.order...) }

// String renders "key=count" pairs in first-seen order, space-separated.
func (t *Tally) String() string {
	var b strings.Builder
	for i, k := range t.order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, t.counts[k])
	}
	return b.String()
}
